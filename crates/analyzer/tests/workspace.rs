//! End-to-end driver tests: a synthetic mini-workspace on disk, and
//! the self-test asserting the real workspace is clean under the real
//! checked-in `analyzer.toml`.

use std::path::{Path, PathBuf};

use psc_analyzer::{analyze_workspace, Config};

fn write(path: &Path, text: &str) {
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(path, text).expect("write fixture workspace");
}

#[test]
fn synthetic_workspace_reports_expected_diagnostics() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("mini-ws");
    let _ = std::fs::remove_dir_all(&root);
    write(
        &root.join("crates/good/Cargo.toml"),
        "[package]\nname = \"good\"\n",
    );
    write(
        &root.join("crates/good/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn ok() {}\n",
    );
    write(
        &root.join("crates/evil/Cargo.toml"),
        "[package]\nname = \"evil\"\nrepository = \"https://example.org/evil\"\n",
    );
    write(
        &root.join("crates/evil/src/lib.rs"),
        "pub mod hot;\npub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    write(
        &root.join("crates/evil/src/hot.rs"),
        "pub fn k(xs: &[i32]) -> i32 {\n    *xs.first().unwrap()\n}\n",
    );
    let config =
        Config::parse("[lint.hot-path-no-panic]\nhot_modules = [\"crates/evil/src/hot.rs\"]\n")
            .expect("config");

    let report = analyze_workspace(&root, &config).expect("analyze");
    // Three .rs sources plus the two crate manifests (there is no
    // workspace-root Cargo.toml in this fixture).
    assert_eq!(report.files_checked, 5);
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(rendered.len(), 4, "{rendered:?}");
    // Sorted by file, then line; paths are workspace-relative.
    assert!(rendered[0].starts_with("crates/evil/Cargo.toml:3: [placeholder-url]"));
    assert!(rendered[1].starts_with("crates/evil/src/hot.rs:2: [hot-path-no-panic]"));
    assert!(rendered[2].starts_with("crates/evil/src/lib.rs:1: [unsafe-scope]"));
    assert!(rendered[3].starts_with("crates/evil/src/lib.rs:3: [safety-comment]"));
}

/// The analyzer must run clean on the workspace that ships it — the
/// same invocation CI gates on (`cargo run -p psc-analyzer`).
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let config_text =
        std::fs::read_to_string(root.join("analyzer.toml")).expect("read analyzer.toml");
    let config = Config::parse(&config_text).expect("parse analyzer.toml");
    let report = analyze_workspace(&root, &config).expect("analyze workspace");
    assert!(report.files_checked > 50, "found {}", report.files_checked);
    assert!(
        report.is_clean(),
        "workspace violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
