//! End-to-end driver tests: a synthetic mini-workspace on disk, and
//! the self-test asserting the real workspace is clean under the real
//! checked-in `analyzer.toml`.

use std::path::{Path, PathBuf};

use psc_analyzer::{analyze_workspace, Config};

fn write(path: &Path, text: &str) {
    std::fs::create_dir_all(path.parent().expect("parent")).expect("mkdir");
    std::fs::write(path, text).expect("write fixture workspace");
}

#[test]
fn synthetic_workspace_reports_expected_diagnostics() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("mini-ws");
    let _ = std::fs::remove_dir_all(&root);
    write(
        &root.join("crates/good/Cargo.toml"),
        "[package]\nname = \"good\"\n",
    );
    write(
        &root.join("crates/good/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn ok() {}\n",
    );
    write(
        &root.join("crates/evil/Cargo.toml"),
        "[package]\nname = \"evil\"\nrepository = \"https://example.org/evil\"\n",
    );
    write(
        &root.join("crates/evil/src/lib.rs"),
        "pub mod hot;\npub fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n",
    );
    write(
        &root.join("crates/evil/src/hot.rs"),
        "pub fn k(xs: &[i32]) -> i32 {\n    *xs.first().unwrap()\n}\n",
    );
    let config =
        Config::parse("[lint.hot-path-no-panic]\nhot_modules = [\"crates/evil/src/hot.rs\"]\n")
            .expect("config");

    let report = analyze_workspace(&root, &config).expect("analyze");
    // Three .rs sources plus the two crate manifests (there is no
    // workspace-root Cargo.toml in this fixture).
    assert_eq!(report.files_checked, 5);
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    assert_eq!(rendered.len(), 4, "{rendered:?}");
    // Sorted by file, then line; paths are workspace-relative.
    assert!(rendered[0].starts_with("crates/evil/Cargo.toml:3: [placeholder-url]"));
    assert!(rendered[1].starts_with("crates/evil/src/hot.rs:2: [hot-path-no-panic]"));
    assert!(rendered[2].starts_with("crates/evil/src/lib.rs:1: [unsafe-scope]"));
    assert!(rendered[3].starts_with("crates/evil/src/lib.rs:3: [safety-comment]"));
}

/// The transitive pass end-to-end: a planted `.unwrap()` two hops from
/// the hot module is reported with the full call chain, an allocation
/// behind a helper is flagged only in loop context, a call-graph cycle
/// terminates, and a cross-crate call resolves through the symbol
/// index. Unresolvable calls surface in the report counter.
#[test]
fn transitive_lints_walk_a_synthetic_workspace() {
    let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join("transitive-ws");
    let _ = std::fs::remove_dir_all(&root);
    for name in ["core", "util"] {
        write(
            &root.join(format!("crates/{name}/Cargo.toml")),
            &format!("[package]\nname = \"{name}\"\n"),
        );
    }
    // Hot module: calls a same-crate helper (inside a loop) and a
    // cross-crate one; also a call nothing can resolve.
    write(
        &root.join("crates/core/src/step2.rs"),
        "#![forbid(unsafe_code)]\npub fn run_bucketed(xs: &[u32]) {\n    for x in xs {\n        middle(*x);\n    }\n    util_entry();\n    mystery_extern_call();\n}\n",
    );
    // The middle hop lives outside the hot module so the chain really
    // is transitive, not a same-file root.
    write(
        &root.join("crates/core/src/mid.rs"),
        "#![forbid(unsafe_code)]\npub fn middle(x: u32) {\n    crate::merge(x);\n}\n",
    );
    // Same crate, different file: panics two hops from the root, and
    // cycles back into the middle hop (merge → middle → merge).
    write(
        &root.join("crates/core/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub mod step2;\npub fn merge(x: u32) {\n    let v = x.checked_mul(2).unwrap();\n    if v > 100 {\n        mid::middle(v);\n    }\n}\n",
    );
    // Other crate: reached via `psc_util::…` path, allocates in its own
    // loop (flagged) and at its top (allowed from straight-line code).
    write(
        &root.join("crates/util/src/lib.rs"),
        "#![forbid(unsafe_code)]\npub fn scratch(n: usize) -> Vec<u32> {\n    let mut out = Vec::with_capacity(n);\n    for _ in 0..n {\n        out.extend(vec![0u32]);\n    }\n    out\n}\n",
    );
    write(
        &root.join("crates/core/src/util_glue.rs"),
        "#![forbid(unsafe_code)]\npub fn util_entry() {\n    psc_util::scratch(4);\n}\n",
    );
    let config = Config::parse(
        "[lint.hot-path-no-panic]\nhot_modules = [\"crates/core/src/step2.rs\"]\n[lint.hot-path-no-alloc]\nkernel_modules = [\"crates/core/src/step2.rs\"]\n",
    )
    .expect("config");

    let report = analyze_workspace(&root, &config).expect("analyze");
    let rendered: Vec<String> = report.diagnostics.iter().map(|d| d.to_string()).collect();
    let panic_chain = rendered
        .iter()
        .find(|d| d.contains("[hot-path-no-panic]"))
        .unwrap_or_else(|| panic!("no panic diagnostic in {rendered:?}"));
    // The full chain, two hops from the hot module, despite the
    // middle → merge → middle cycle.
    assert!(
        panic_chain.contains("step2.rs:run_bucketed → mid.rs:middle → lib.rs:merge → .unwrap()"),
        "{panic_chain}"
    );
    let alloc_lines: Vec<&String> = rendered
        .iter()
        .filter(|d| d.contains("[hot-path-no-alloc]"))
        .collect();
    // Only the loop-context `vec!` in the cross-crate helper fires; the
    // amortizable `Vec::with_capacity` at fn scope does not (the chain
    // into `scratch` runs through straight-line code).
    assert_eq!(alloc_lines.len(), 1, "{rendered:?}");
    assert!(
        alloc_lines[0].starts_with("crates/util/src/lib.rs:5:")
            && alloc_lines[0].contains("util_glue.rs:util_entry → lib.rs:scratch → vec!"),
        "{}",
        alloc_lines[0]
    );
    // `mystery_extern_call` (and the std calls) resolve to nothing and
    // are surfaced in the counter rather than silently dropped.
    assert!(report.unresolved_calls >= 1, "{}", report.unresolved_calls);
    assert!(report.call_edges >= 4, "{}", report.call_edges);
}

/// The analyzer must run clean on the workspace that ships it — the
/// same invocation CI gates on (`cargo run -p psc-analyzer`).
#[test]
fn real_workspace_is_clean() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root")
        .to_path_buf();
    let config_text =
        std::fs::read_to_string(root.join("analyzer.toml")).expect("read analyzer.toml");
    let config = Config::parse(&config_text).expect("parse analyzer.toml");
    let report = analyze_workspace(&root, &config).expect("analyze workspace");
    assert!(report.files_checked > 50, "found {}", report.files_checked);
    // The call graph must actually cover the workspace — a resolution
    // regression that silently dropped all edges would otherwise keep
    // this test green while gutting the transitive lints.
    assert!(report.functions > 300, "found {}", report.functions);
    assert!(report.call_edges > 500, "found {}", report.call_edges);
    assert!(report.unresolved_calls > 0, "conservatism counter empty");
    assert!(
        report.is_clean(),
        "workspace violations:\n{}",
        report
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
