//! Property tests for scoring and statistics.

use proptest::prelude::*;
use psc_score::karlin::{compute_h, compute_lambda, ungapped_params};
use psc_score::matrix::match_mismatch;
use psc_score::{blosum62, parse_ncbi_matrix, ROBINSON_FREQS};

/// Random valid frequency vector (positive, normalized).
fn freqs() -> impl Strategy<Value = [f64; 20]> {
    proptest::collection::vec(0.01f64..1.0, 20).prop_map(|v| {
        let sum: f64 = v.iter().sum();
        let mut out = [0.0; 20];
        for (o, x) in out.iter_mut().zip(v) {
            *o = x / sum;
        }
        out
    })
}

proptest! {
    /// λ exists for any match/mismatch system with negative expectation,
    /// and satisfies its defining equation.
    #[test]
    fn lambda_solves_defining_equation(
        freqs in freqs(),
        matched in 1i8..12,
        mismatched in -12i8..-1,
    ) {
        let m = match_mismatch("mm", matched, mismatched);
        if m.expected_score(&freqs) < -1e-6 {
            let lambda = compute_lambda(&m, &freqs).expect("negative drift has a root");
            prop_assert!(lambda > 0.0);
            // Σ pᵢpⱼ e^{λ sᵢⱼ} = 1.
            let mut phi = 0.0;
            for (i, &pi) in freqs.iter().enumerate() {
                for (j, &pj) in freqs.iter().enumerate() {
                    phi += pi * pj * (lambda * m.score(i as u8, j as u8) as f64).exp();
                }
            }
            prop_assert!((phi - 1.0).abs() < 1e-6, "phi = {phi}");
            // H is positive for a usable system.
            let h = compute_h(&m, &freqs, lambda);
            prop_assert!(h > 0.0);
        }
    }

    /// E-values are monotone decreasing in score and increasing in
    /// search space; bit scores invert consistently.
    #[test]
    fn evalue_monotonicity(s1 in 1i32..200, ds in 1i32..50, m in 1usize..10_000, n in 1usize..10_000) {
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        prop_assert!(p.evalue(s1 + ds, m, n) < p.evalue(s1, m, n));
        prop_assert!(p.evalue(s1, m * 2, n) > p.evalue(s1, m, n));
        prop_assert!(p.bit_score(s1 + ds) > p.bit_score(s1));
        // score_for_evalue is the inverse threshold.
        let e = p.evalue(s1, m, n);
        let s = p.score_for_evalue(e, m, n);
        prop_assert!(s <= s1, "s={s} s1={s1}");
        prop_assert!(p.evalue(s, m, n) <= e * (1.0 + 1e-9));
    }

    /// The NCBI-format matrix parser round-trips arbitrary symmetric
    /// matrices rendered as text.
    #[test]
    fn parser_round_trips(seed_scores in proptest::collection::vec(-9i8..9, 300)) {
        // Build a symmetric 24x24 from the seeds.
        let mut flat = [0i8; 576];
        let mut k = 0;
        for a in 0..24usize {
            for b in 0..=a {
                let v = seed_scores[k % seed_scores.len()];
                flat[a * 24 + b] = v;
                flat[b * 24 + a] = v;
                k += 1;
            }
        }
        let m = psc_score::SubstitutionMatrix::from_flat("rand", flat);
        // Render in NCBI format.
        let mut text = String::from("  ");
        for c in psc_seqio::alphabet::AA_LETTERS {
            text.push(' ');
            text.push(c as char);
        }
        text.push('\n');
        for a in 0..24u8 {
            text.push(psc_seqio::alphabet::AA_LETTERS[a as usize] as char);
            for b in 0..24u8 {
                text.push_str(&format!(" {}", m.score(a, b)));
            }
            text.push('\n');
        }
        let parsed = parse_ncbi_matrix("rand", &text).unwrap();
        prop_assert_eq!(&parsed.flat()[..], &m.flat()[..]);
    }
}
