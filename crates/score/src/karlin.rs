//! Karlin–Altschul statistics: λ, K, H, bit scores and E-values.
//!
//! Ungapped parameters are computed numerically from the substitution
//! matrix and background frequencies exactly as in Karlin & Altschul
//! (PNAS 1990): λ is the positive root of `Σ pᵢpⱼ e^{λ sᵢⱼ} = 1`, H is the
//! relative entropy of the λ-tilted score distribution, and K follows the
//! lattice-case formula with the σ series evaluated by convolving the
//! one-step score distribution.
//!
//! Gapped statistics cannot be derived analytically; like NCBI BLAST we
//! carry a table of published parameters (BLOSUM62 with the default
//! open/extend penalties) and fall back to the computed ungapped values —
//! a conservative choice (it overestimates E-values of gapped alignments).

use crate::matrix::SubstitutionMatrix;

/// Karlin–Altschul parameter set.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KarlinParams {
    /// Scale of the scoring system (nats per score unit).
    pub lambda: f64,
    /// Search-space scale factor.
    pub k: f64,
    /// Relative entropy (nats per aligned pair).
    pub h: f64,
}

impl KarlinParams {
    /// Bit score of a raw score.
    #[inline]
    pub fn bit_score(&self, raw: i32) -> f64 {
        (self.lambda * raw as f64 - self.k.ln()) / std::f64::consts::LN_2
    }

    /// E-value of a raw score in an `m × n` search space.
    #[inline]
    pub fn evalue(&self, raw: i32, m: usize, n: usize) -> f64 {
        self.k * m as f64 * n as f64 * (-self.lambda * raw as f64).exp()
    }

    /// Smallest raw score whose E-value is at most `evalue` in an
    /// `m × n` search space.
    pub fn score_for_evalue(&self, evalue: f64, m: usize, n: usize) -> i32 {
        // The 1e-9 slack keeps an exactly-attained E-value from ceiling
        // one score unit too high under floating-point noise.
        let s = ((self.k * m as f64 * n as f64 / evalue).ln() / self.lambda - 1e-9).ceil();
        s.max(0.0) as i32
    }
}

/// BLAST's length adjustment ("edge-effect correction"): an alignment
/// cannot start in the last ~ℓ residues of either sequence, so the
/// effective search space shrinks. ℓ solves the fixed point
/// `ℓ = ln(K·(m−ℓ)·(n−N·ℓ)) / H` (NCBI `BlastComputeLengthAdjustment`),
/// iterated from 0 with clamping; `seq_count` is the number of database
/// sequences N.
pub fn length_adjustment(params: &KarlinParams, m: usize, n: usize, seq_count: usize) -> usize {
    if m == 0 || n == 0 || params.h <= 0.0 {
        return 0;
    }
    let (mf, nf, nseq) = (m as f64, n as f64, seq_count.max(1) as f64);
    let mut ell = 0.0f64;
    for _ in 0..20 {
        let m_eff = (mf - ell).max(1.0);
        let n_eff = (nf - nseq * ell).max(1.0);
        let next = (params.k * m_eff * n_eff).ln().max(0.0) / params.h;
        // Clamp so effective lengths stay positive.
        let next = next.min(mf - 1.0).min((nf - 1.0) / nseq).max(0.0);
        if (next - ell).abs() < 0.5 {
            ell = next;
            break;
        }
        ell = next;
    }
    ell as usize
}

/// Effective search space `(m−ℓ)·(n−N·ℓ)` after length adjustment.
pub fn effective_search_space(
    params: &KarlinParams,
    m: usize,
    n: usize,
    seq_count: usize,
) -> (usize, usize) {
    let ell = length_adjustment(params, m, n, seq_count);
    (
        m.saturating_sub(ell).max(1),
        n.saturating_sub(seq_count.max(1) * ell).max(1),
    )
}

/// Published gapped parameters (NCBI `blast_stat.c` tables).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GappedParams {
    pub gap_open: i32,
    pub gap_extend: i32,
    pub params: KarlinParams,
}

/// Published gapped Karlin parameters for BLOSUM62.
pub const BLOSUM62_GAPPED: &[GappedParams] = &[
    GappedParams {
        gap_open: 11,
        gap_extend: 1,
        params: KarlinParams {
            lambda: 0.267,
            k: 0.041,
            h: 0.14,
        },
    },
    GappedParams {
        gap_open: 10,
        gap_extend: 1,
        params: KarlinParams {
            lambda: 0.243,
            k: 0.024,
            h: 0.10,
        },
    },
    GappedParams {
        gap_open: 12,
        gap_extend: 1,
        params: KarlinParams {
            lambda: 0.283,
            k: 0.059,
            h: 0.19,
        },
    },
];

/// Look up published gapped parameters for a matrix/penalty combination;
/// `None` means the caller should fall back to ungapped parameters.
pub fn gapped_params(matrix: &SubstitutionMatrix, open: i32, extend: i32) -> Option<KarlinParams> {
    if matrix.name == "BLOSUM62" {
        BLOSUM62_GAPPED
            .iter()
            .find(|g| g.gap_open == open && g.gap_extend == extend)
            .map(|g| g.params)
    } else {
        None
    }
}

/// The one-step score distribution `P(S = s)` for independent residue
/// pairs under background frequencies, as a dense vector over
/// `[min_score, max_score]`.
fn score_distribution(matrix: &SubstitutionMatrix, freqs: &[f64; 20]) -> (i32, Vec<f64>) {
    let low = matrix.min_score();
    let high = matrix.max_score();
    let mut probs = vec![0.0; (high - low + 1) as usize];
    for (i, &pi) in freqs.iter().enumerate() {
        for (j, &pj) in freqs.iter().enumerate() {
            let s = matrix.score(i as u8, j as u8);
            probs[(s - low) as usize] += pi * pj;
        }
    }
    (low, probs)
}

/// Solve `Σ P(s) e^{λs} = 1` for λ > 0 by bisection.
///
/// Returns `None` when the expected score is non-negative (no positive
/// root exists — the scoring system is unusable for local alignment).
pub fn compute_lambda(matrix: &SubstitutionMatrix, freqs: &[f64; 20]) -> Option<f64> {
    if matrix.expected_score(freqs) >= 0.0 || matrix.max_score() <= 0 {
        return None;
    }
    let (low, probs) = score_distribution(matrix, freqs);
    let phi = |lambda: f64| -> f64 {
        probs
            .iter()
            .enumerate()
            .map(|(k, &p)| p * (lambda * (low + k as i32) as f64).exp())
            .sum::<f64>()
            - 1.0
    };
    // φ(0) = 0, φ'(0) = E[S] < 0, φ(λ) → ∞: bracket the positive root.
    let mut hi = 0.5;
    while phi(hi) < 0.0 {
        hi *= 2.0;
        if hi > 100.0 {
            return None;
        }
    }
    let mut lo = 1e-9;
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if phi(mid) < 0.0 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(0.5 * (lo + hi))
}

/// Relative entropy `H = λ Σ s P(s) e^{λs}` (nats per aligned pair).
pub fn compute_h(matrix: &SubstitutionMatrix, freqs: &[f64; 20], lambda: f64) -> f64 {
    let (low, probs) = score_distribution(matrix, freqs);
    let av: f64 = probs
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            let s = (low + k as i32) as f64;
            p * s * (lambda * s).exp()
        })
        .sum();
    lambda * av
}

/// Greatest common divisor of all attainable score differences (the score
/// lattice span δ).
fn score_gcd(matrix: &SubstitutionMatrix, freqs: &[f64; 20]) -> i32 {
    let (low, probs) = score_distribution(matrix, freqs);
    let mut g = 0i32;
    for (k, &p) in probs.iter().enumerate() {
        if p > 0.0 {
            let s = low + k as i32;
            if s != 0 {
                g = gcd(g, s.abs());
            }
        }
    }
    g.max(1)
}

fn gcd(a: i32, b: i32) -> i32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Compute K using the Karlin–Altschul lattice formula
/// `K = δλ e^{-2σ} / (H (1 - e^{-δλ}))` with
/// `σ = Σ_{k≥1} (1/k) [ P(S_k ≥ 0) + P̃(S_k < 0) ]`,
/// where `S_k` is the k-step score walk and `P̃` its λ-tilted law.
pub fn compute_k(matrix: &SubstitutionMatrix, freqs: &[f64; 20], lambda: f64, h: f64) -> f64 {
    let (low, step) = score_distribution(matrix, freqs);
    let high = low + step.len() as i32 - 1;
    let delta = score_gcd(matrix, freqs) as f64;

    const MAX_ITER: usize = 80;
    // Dense distribution of S_k over [k*low, k*high]; start with S_1.
    let mut walk = step.clone();
    let mut walk_low = low;
    let mut sigma = 0.0;
    for k in 1..=MAX_ITER {
        // bracket_k = P(S_k >= 0) + (1 - E[e^{λ S_k}; S_k >= 0]).
        let mut p_ge0 = 0.0;
        let mut tilted_ge0 = 0.0;
        for (idx, &p) in walk.iter().enumerate() {
            let s = walk_low + idx as i32;
            if s >= 0 {
                p_ge0 += p;
                tilted_ge0 += p * (lambda * s as f64).exp();
            }
        }
        let bracket = p_ge0 + (1.0 - tilted_ge0.min(1.0));
        sigma += bracket / k as f64;
        if bracket < 1e-14 {
            break;
        }
        if k < MAX_ITER {
            // Convolve with the one-step distribution.
            let new_low = walk_low + low;
            let new_len = walk.len() + step.len() - 1;
            let mut next = vec![0.0; new_len];
            for (i, &wp) in walk.iter().enumerate() {
                if wp == 0.0 {
                    continue;
                }
                for (j, &sp) in step.iter().enumerate() {
                    next[i + j] += wp * sp;
                }
            }
            walk = next;
            walk_low = new_low;
        }
    }
    let _ = high;
    delta * lambda * (-2.0 * sigma).exp() / (h * (1.0 - (-delta * lambda).exp()))
}

/// Compute the full ungapped parameter set for a matrix and background.
///
/// Returns `None` when the scoring system has non-negative expected score.
pub fn ungapped_params(matrix: &SubstitutionMatrix, freqs: &[f64; 20]) -> Option<KarlinParams> {
    let lambda = compute_lambda(matrix, freqs)?;
    let h = compute_h(matrix, freqs, lambda);
    let k = compute_k(matrix, freqs, lambda, h);
    Some(KarlinParams { lambda, k, h })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freqs::ROBINSON_FREQS;
    use crate::matrix::{blosum62, match_mismatch};

    #[test]
    fn blosum62_lambda_matches_published() {
        // NCBI publishes λ = 0.3176 for BLOSUM62 / Robinson frequencies.
        let lambda = compute_lambda(blosum62(), &ROBINSON_FREQS).unwrap();
        assert!(
            (lambda - 0.3176).abs() < 0.005,
            "lambda {lambda} vs published 0.3176"
        );
    }

    #[test]
    fn blosum62_h_matches_published() {
        // Published H ≈ 0.40 nats.
        let lambda = compute_lambda(blosum62(), &ROBINSON_FREQS).unwrap();
        let h = compute_h(blosum62(), &ROBINSON_FREQS, lambda);
        assert!((h - 0.40).abs() < 0.02, "H {h} vs published 0.40");
    }

    #[test]
    fn blosum62_k_matches_published() {
        // Published K ≈ 0.134.
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        assert!((p.k - 0.134).abs() < 0.02, "K {} vs published 0.134", p.k);
    }

    #[test]
    fn positive_expected_score_rejected() {
        let m = match_mismatch("always-win", 1, 1);
        assert!(compute_lambda(&m, &ROBINSON_FREQS).is_none());
        assert!(ungapped_params(&m, &ROBINSON_FREQS).is_none());
    }

    #[test]
    fn evalue_monotone_in_score() {
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        let e40 = p.evalue(40, 1000, 1_000_000);
        let e50 = p.evalue(50, 1000, 1_000_000);
        assert!(e50 < e40);
        assert!(e40 > 0.0);
    }

    #[test]
    fn evalue_scales_with_search_space() {
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        let e1 = p.evalue(45, 1000, 1_000_000);
        let e2 = p.evalue(45, 2000, 1_000_000);
        assert!((e2 / e1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn score_for_evalue_inverts_evalue() {
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        let (m, n) = (10_000, 3_000_000);
        let s = p.score_for_evalue(1e-3, m, n);
        assert!(p.evalue(s, m, n) <= 1e-3);
        assert!(p.evalue(s - 1, m, n) > 1e-3);
    }

    #[test]
    fn bit_score_increases_with_raw() {
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        assert!(p.bit_score(50) > p.bit_score(40));
        // A raw score of ~30 is about 16 bits under BLOSUM62.
        let bits = p.bit_score(30);
        assert!(bits > 10.0 && bits < 20.0, "bits {bits}");
    }

    #[test]
    fn gapped_lookup() {
        let g = gapped_params(blosum62(), 11, 1).unwrap();
        assert!((g.lambda - 0.267).abs() < 1e-9);
        assert!(gapped_params(blosum62(), 99, 9).is_none());
        let mm = match_mismatch("MM", 5, -4);
        assert!(gapped_params(&mm, 11, 1).is_none());
    }

    #[test]
    fn length_adjustment_behaves_like_ncbi() {
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        // A 300-residue query against a 1 Maa database of 3000 sequences:
        // NCBI's adjustment is a few dozen residues.
        let ell = length_adjustment(&p, 300, 1_000_000, 3000);
        assert!(ell > 10 && ell < 120, "ell {ell}");
        // Effective space strictly smaller, never zero.
        let (me, ne) = effective_search_space(&p, 300, 1_000_000, 3000);
        assert!(me < 300 && me > 0);
        assert!(ne < 1_000_000 && ne > 0);
        // Bigger search spaces need bigger adjustments.
        let ell_big = length_adjustment(&p, 300, 100_000_000, 3000);
        assert!(ell_big > ell);
        // Degenerate inputs are safe.
        assert_eq!(length_adjustment(&p, 0, 1000, 1), 0);
        assert_eq!(length_adjustment(&p, 1000, 0, 1), 0);
        // Tiny sequences never go non-positive.
        let (me, ne) = effective_search_space(&p, 5, 8, 4);
        assert!(me >= 1 && ne >= 1);
    }

    #[test]
    fn effective_evalues_are_more_conservative() {
        // Same raw score, corrected search space → smaller E-value (the
        // correction removes unreachable alignment starts).
        let p = ungapped_params(blosum62(), &ROBINSON_FREQS).unwrap();
        let (m, n, nseq) = (500, 2_000_000, 5000);
        let (me, ne) = effective_search_space(&p, m, n, nseq);
        assert!(p.evalue(40, me, ne) < p.evalue(40, m, n));
    }

    #[test]
    fn uniform_match_mismatch_lambda_closed_form() {
        // For +1/-1 scoring with uniform frequencies, λ solves
        // p e^λ + (1-p) e^{-λ} = 1 with p = 1/20 ⇒ e^λ = (1-p)/p … check
        // numerically instead of trusting algebra: verify φ(λ*) ≈ 0.
        let m = match_mismatch("pm1", 1, -1);
        let freqs = [0.05f64; 20];
        let lambda = compute_lambda(&m, &freqs).unwrap();
        let p = 0.05f64;
        let phi = p * lambda.exp() + (1.0 - p) * (-lambda).exp();
        assert!((phi - 1.0).abs() < 1e-9, "phi {phi}");
    }
}
