//! # psc-score — substitution matrices and alignment statistics
//!
//! Scoring substrate for the RASC-100 reproduction:
//!
//! * [`SubstitutionMatrix`]: dense 24×24 amino-acid substitution scores,
//!   addressed by the residue codes of `psc-seqio`. BLOSUM62 (the matrix
//!   the paper and NCBI `tblastn` default to) ships built in; any other
//!   NCBI-format matrix can be parsed from text.
//! * [`karlin`]: Karlin–Altschul statistics — the `λ`, `K` and `H`
//!   parameters that turn raw alignment scores into bit scores and
//!   E-values, computed numerically from the matrix and background
//!   residue frequencies (with published gapped parameter sets for the
//!   common matrices).
//! * [`builder`]: the BLOSUM construction algorithm itself (Henikoff &
//!   Henikoff 1992), so matrices can be derived from alignment blocks.

#![forbid(unsafe_code)]

pub mod builder;
pub mod freqs;
pub mod karlin;
pub mod matrix;
pub mod parser;

pub use builder::{build_blosum, Block};
pub use freqs::ROBINSON_FREQS;
pub use karlin::{effective_search_space, length_adjustment, GappedParams, KarlinParams};
pub use matrix::{blosum62, SubstitutionMatrix};
pub use parser::parse_ncbi_matrix;
