//! Parser for NCBI-format substitution matrix text files.
//!
//! The format is the one distributed with BLAST: `#` comment lines, a
//! header row of residue letters, then one row per residue starting with
//! its letter. Columns/rows may appear in any order and may omit
//! residues; missing pairs default to the most negative score seen.

use crate::matrix::SubstitutionMatrix;
use psc_seqio::alphabet::{Aa, AA_ALPHABET_LEN};

/// Parse an NCBI-format matrix (e.g. the distributed `BLOSUM62` file).
pub fn parse_ncbi_matrix(name: &str, text: &str) -> Result<SubstitutionMatrix, String> {
    let mut columns: Option<Vec<Aa>> = None;
    let mut scores = [[None::<i8>; AA_ALPHABET_LEN]; AA_ALPHABET_LEN];
    let mut min_seen = 0i8;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut fields = line.split_whitespace();
        if columns.is_none() {
            // Header row: residue letters only.
            let cols: Result<Vec<Aa>, String> = fields
                .map(|f| {
                    let b = f.as_bytes();
                    if b.len() != 1 {
                        return Err(format!("line {}: bad column label {f:?}", lineno + 1));
                    }
                    Aa::from_ascii(b[0])
                        .ok_or_else(|| format!("line {}: unknown residue {f:?}", lineno + 1))
                })
                .collect();
            columns = Some(cols?);
            continue;
        }
        let cols = columns.as_ref().unwrap();
        let row_label = fields
            .next()
            .ok_or_else(|| format!("line {}: empty row", lineno + 1))?;
        let rb = row_label.as_bytes();
        if rb.len() != 1 {
            return Err(format!("line {}: bad row label {row_label:?}", lineno + 1));
        }
        let row = Aa::from_ascii(rb[0])
            .ok_or_else(|| format!("line {}: unknown residue {row_label:?}", lineno + 1))?;
        for (col_idx, field) in fields.enumerate() {
            let col = *cols
                .get(col_idx)
                .ok_or_else(|| format!("line {}: more scores than columns", lineno + 1))?;
            let v: i8 = field
                .parse()
                .map_err(|_| format!("line {}: bad score {field:?}", lineno + 1))?;
            min_seen = min_seen.min(v);
            scores[row.0 as usize][col.0 as usize] = Some(v);
        }
    }

    if columns.is_none() {
        return Err("no header row found".into());
    }
    let mut flat = [min_seen; AA_ALPHABET_LEN * AA_ALPHABET_LEN];
    for (i, row) in scores.iter().enumerate() {
        for (j, v) in row.iter().enumerate() {
            if let Some(v) = v {
                flat[i * AA_ALPHABET_LEN + j] = *v;
            }
        }
    }
    Ok(SubstitutionMatrix::from_flat(name, flat))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::blosum62;
    use psc_seqio::alphabet::AA_LETTERS;

    /// Render a matrix in NCBI text format (used by the round-trip test
    /// and by the CLI `matrix dump` command).
    pub fn render_ncbi(m: &SubstitutionMatrix) -> String {
        let mut out = String::from("# rendered by psc-score\n  ");
        for &c in AA_LETTERS.iter() {
            out.push(' ');
            out.push(c as char);
            out.push(' ');
        }
        out.push('\n');
        for a in 0..AA_ALPHABET_LEN as u8 {
            out.push(AA_LETTERS[a as usize] as char);
            for b in 0..AA_ALPHABET_LEN as u8 {
                out.push_str(&format!(" {:2}", m.score(a, b)));
            }
            out.push('\n');
        }
        out
    }

    #[test]
    fn round_trips_blosum62() {
        let text = render_ncbi(blosum62());
        let parsed = parse_ncbi_matrix("BLOSUM62", &text).unwrap();
        assert_eq!(parsed.flat()[..], blosum62().flat()[..]);
    }

    #[test]
    fn parses_small_matrix_with_comments() {
        let text = "# tiny\n   A  R\nA  4 -1\nR -1  5\n";
        let m = parse_ncbi_matrix("tiny", text).unwrap();
        assert_eq!(m.score(0, 0), 4);
        assert_eq!(m.score(0, 1), -1);
        assert_eq!(m.score(1, 1), 5);
        // Missing pairs default to the most negative seen (-1).
        assert_eq!(m.score(2, 2), -1);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse_ncbi_matrix("x", "").is_err());
        assert!(parse_ncbi_matrix("x", "A R\nA 4 foo\n").is_err());
        assert!(parse_ncbi_matrix("x", "A R\nA 4 -1 7\n").is_err());
        assert!(parse_ncbi_matrix("x", "AB R\nA 1 2\n").is_err());
    }
}
