//! Dense amino-acid substitution matrices.
//!
//! Scores are stored as a flat `[i8; 24*24]` addressed by the residue codes
//! of `psc-seqio` (`A R N D C Q E G H I L K M F P S T W Y V B Z X *`).
//! The flat-`i8` layout is exactly the ROM contents a PSC processing
//! element holds on the FPGA, so the simulator and the software kernels
//! read the same table.

use psc_seqio::alphabet::{Aa, AA_ALPHABET_LEN};

/// A 24×24 substitution matrix over encoded amino acids.
#[derive(Clone, PartialEq, Eq)]
pub struct SubstitutionMatrix {
    /// Human-readable name ("BLOSUM62", …).
    pub name: String,
    scores: [i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN],
}

impl std::fmt::Debug for SubstitutionMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SubstitutionMatrix({})", self.name)
    }
}

impl SubstitutionMatrix {
    /// Build from a flat row-major table.
    pub fn from_flat(
        name: impl Into<String>,
        scores: [i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN],
    ) -> Self {
        SubstitutionMatrix {
            name: name.into(),
            scores,
        }
    }

    /// Score for substituting residue `a` by residue `b`.
    #[inline(always)]
    pub fn score(&self, a: u8, b: u8) -> i32 {
        debug_assert!((a as usize) < AA_ALPHABET_LEN && (b as usize) < AA_ALPHABET_LEN);
        self.scores[a as usize * AA_ALPHABET_LEN + b as usize] as i32
    }

    /// Typed accessor.
    #[inline(always)]
    pub fn score_aa(&self, a: Aa, b: Aa) -> i32 {
        self.score(a.0, b.0)
    }

    /// The raw flat table — this is what gets loaded into a PE's ROM.
    #[inline]
    pub fn flat(&self) -> &[i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN] {
        &self.scores
    }

    /// Highest score in the matrix (over standard residues).
    pub fn max_score(&self) -> i32 {
        let mut m = i32::MIN;
        for a in Aa::standard() {
            for b in Aa::standard() {
                m = m.max(self.score_aa(a, b));
            }
        }
        m
    }

    /// Lowest score in the matrix (over standard residues).
    pub fn min_score(&self) -> i32 {
        let mut m = i32::MAX;
        for a in Aa::standard() {
            for b in Aa::standard() {
                m = m.min(self.score_aa(a, b));
            }
        }
        m
    }

    /// Expected score per aligned pair under background frequencies
    /// (must be negative for Karlin–Altschul statistics to apply).
    pub fn expected_score(&self, freqs: &[f64; 20]) -> f64 {
        let mut e = 0.0;
        for (i, &pi) in freqs.iter().enumerate() {
            for (j, &pj) in freqs.iter().enumerate() {
                e += pi * pj * self.score(i as u8, j as u8) as f64;
            }
        }
        e
    }

    /// True when `score(a,b) == score(b,a)` for all residues.
    pub fn is_symmetric(&self) -> bool {
        for a in 0..AA_ALPHABET_LEN as u8 {
            for b in 0..a {
                if self.score(a, b) != self.score(b, a) {
                    return false;
                }
            }
        }
        true
    }
}

/// The canonical NCBI BLOSUM62 matrix (half-bit units), row/column order
/// `A R N D C Q E G H I L K M F P S T W Y V B Z X *`.
#[rustfmt::skip]
const BLOSUM62: [i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN] = [
//   A   R   N   D   C   Q   E   G   H   I   L   K   M   F   P   S   T   W   Y   V   B   Z   X   *
     4, -1, -2, -2,  0, -1, -1,  0, -2, -1, -1, -1, -1, -2, -1,  1,  0, -3, -2,  0, -2, -1,  0, -4, // A
    -1,  5,  0, -2, -3,  1,  0, -2,  0, -3, -2,  2, -1, -3, -2, -1, -1, -3, -2, -3, -1,  0, -1, -4, // R
    -2,  0,  6,  1, -3,  0,  0,  0,  1, -3, -3,  0, -2, -3, -2,  1,  0, -4, -2, -3,  3,  0, -1, -4, // N
    -2, -2,  1,  6, -3,  0,  2, -1, -1, -3, -4, -1, -3, -3, -1,  0, -1, -4, -3, -3,  4,  1, -1, -4, // D
     0, -3, -3, -3,  9, -3, -4, -3, -3, -1, -1, -3, -1, -2, -3, -1, -1, -2, -2, -1, -3, -3, -2, -4, // C
    -1,  1,  0,  0, -3,  5,  2, -2,  0, -3, -2,  1,  0, -3, -1,  0, -1, -2, -1, -2,  0,  3, -1, -4, // Q
    -1,  0,  0,  2, -4,  2,  5, -2,  0, -3, -3,  1, -2, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4, // E
     0, -2,  0, -1, -3, -2, -2,  6, -2, -4, -4, -2, -3, -3, -2,  0, -2, -2, -3, -3, -1, -2, -1, -4, // G
    -2,  0,  1, -1, -3,  0,  0, -2,  8, -3, -3, -1, -2, -1, -2, -1, -2, -2,  2, -3,  0,  0, -1, -4, // H
    -1, -3, -3, -3, -1, -3, -3, -4, -3,  4,  2, -3,  1,  0, -3, -2, -1, -3, -1,  3, -3, -3, -1, -4, // I
    -1, -2, -3, -4, -1, -2, -3, -4, -3,  2,  4, -2,  2,  0, -3, -2, -1, -2, -1,  1, -4, -3, -1, -4, // L
    -1,  2,  0, -1, -3,  1,  1, -2, -1, -3, -2,  5, -1, -3, -1,  0, -1, -3, -2, -2,  0,  1, -1, -4, // K
    -1, -1, -2, -3, -1,  0, -2, -3, -2,  1,  2, -1,  5,  0, -2, -1, -1, -1, -1,  1, -3, -1, -1, -4, // M
    -2, -3, -3, -3, -2, -3, -3, -3, -1,  0,  0, -3,  0,  6, -4, -2, -2,  1,  3, -1, -3, -3, -1, -4, // F
    -1, -2, -2, -1, -3, -1, -1, -2, -2, -3, -3, -1, -2, -4,  7, -1, -1, -4, -3, -2, -2, -1, -2, -4, // P
     1, -1,  1,  0, -1,  0,  0,  0, -1, -2, -2,  0, -1, -2, -1,  4,  1, -3, -2, -2,  0,  0,  0, -4, // S
     0, -1,  0, -1, -1, -1, -1, -2, -2, -1, -1, -1, -1, -2, -1,  1,  5, -2, -2,  0, -1, -1,  0, -4, // T
    -3, -3, -4, -4, -2, -2, -3, -2, -2, -3, -2, -3, -1,  1, -4, -3, -2, 11,  2, -3, -4, -3, -2, -4, // W
    -2, -2, -2, -3, -2, -1, -2, -3,  2, -1, -1, -2, -1,  3, -3, -2, -2,  2,  7, -1, -3, -2, -1, -4, // Y
     0, -3, -3, -3, -1, -2, -2, -3, -3,  3,  1, -2,  1, -1, -2, -2,  0, -3, -1,  4, -3, -2, -1, -4, // V
    -2, -1,  3,  4, -3,  0,  1, -1,  0, -3, -4,  0, -3, -3, -2,  0, -1, -4, -3, -3,  4,  1, -1, -4, // B
    -1,  0,  0,  1, -3,  3,  4, -2,  0, -3, -3,  1, -1, -3, -1,  0, -1, -3, -2, -2,  1,  4, -1, -4, // Z
     0, -1, -1, -1, -2, -1, -1, -1, -1, -1, -1, -1, -1, -1, -2,  0,  0, -2, -1, -1, -1, -1, -1, -4, // X
    -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4, -4,  1, // *
];

/// The canonical BLOSUM62 matrix (the paper's scoring function).
pub fn blosum62() -> &'static SubstitutionMatrix {
    static M: std::sync::OnceLock<SubstitutionMatrix> = std::sync::OnceLock::new();
    M.get_or_init(|| SubstitutionMatrix::from_flat("BLOSUM62", BLOSUM62))
}

/// A simple match/mismatch matrix, useful for tests and ablations.
pub fn match_mismatch(name: &str, matched: i8, mismatched: i8) -> SubstitutionMatrix {
    let mut scores = [mismatched; AA_ALPHABET_LEN * AA_ALPHABET_LEN];
    for i in 0..AA_ALPHABET_LEN {
        scores[i * AA_ALPHABET_LEN + i] = matched;
    }
    SubstitutionMatrix::from_flat(name, scores)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freqs::ROBINSON_FREQS;
    use psc_seqio::alphabet::Aa;

    fn aa(c: u8) -> Aa {
        Aa::from_ascii_lossy(c)
    }

    #[test]
    fn blosum62_spot_values() {
        let m = blosum62();
        assert_eq!(m.score_aa(aa(b'W'), aa(b'W')), 11);
        assert_eq!(m.score_aa(aa(b'A'), aa(b'A')), 4);
        assert_eq!(m.score_aa(aa(b'C'), aa(b'C')), 9);
        assert_eq!(m.score_aa(aa(b'E'), aa(b'Q')), 2);
        assert_eq!(m.score_aa(aa(b'I'), aa(b'L')), 2);
        assert_eq!(m.score_aa(aa(b'G'), aa(b'I')), -4);
        assert_eq!(m.score_aa(aa(b'W'), aa(b'P')), -4);
        assert_eq!(m.score_aa(Aa::STOP, Aa::STOP), 1);
        assert_eq!(m.score_aa(aa(b'A'), Aa::STOP), -4);
        assert_eq!(m.score_aa(aa(b'A'), Aa::X), 0);
    }

    #[test]
    fn blosum62_is_symmetric() {
        assert!(blosum62().is_symmetric());
    }

    #[test]
    fn blosum62_extremes() {
        assert_eq!(blosum62().max_score(), 11); // W/W
        assert_eq!(blosum62().min_score(), -4);
    }

    #[test]
    fn blosum62_expected_score_negative() {
        // Karlin-Altschul requires E[s] < 0. Under Robinson background
        // frequencies BLOSUM62's expected pair score is ≈ -0.95 (the often
        // quoted -0.52 uses the matrix's own training frequencies).
        let e = blosum62().expected_score(&ROBINSON_FREQS);
        assert!(e < -0.7 && e > -1.2, "expected score {e}");
    }

    #[test]
    fn blosum62_diagonal_positive() {
        for a in Aa::standard() {
            assert!(blosum62().score_aa(a, a) > 0, "diagonal for {:?}", a);
        }
    }

    #[test]
    fn match_mismatch_shape() {
        let m = match_mismatch("MM", 5, -4);
        assert_eq!(m.score(0, 0), 5);
        assert_eq!(m.score(0, 1), -4);
        assert!(m.is_symmetric());
        assert_eq!(m.max_score(), 5);
        assert_eq!(m.min_score(), -4);
    }
}
