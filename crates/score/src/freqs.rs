//! Background amino-acid frequencies.

/// Robinson & Robinson (1991) background frequencies for the 20 standard
/// amino acids, in `A R N D C Q E G H I L K M F P S T W Y V` encoding
/// order. These are the frequencies NCBI BLAST uses for Karlin–Altschul
/// parameter computation.
pub const ROBINSON_FREQS: [f64; 20] = [
    0.078_05, // A
    0.051_29, // R
    0.044_87, // N
    0.053_64, // D
    0.019_25, // C
    0.042_64, // Q
    0.062_95, // E
    0.073_77, // G
    0.021_99, // H
    0.051_42, // I
    0.090_19, // L
    0.057_44, // K
    0.022_43, // M
    0.038_56, // F
    0.052_03, // P
    0.071_20, // S
    0.058_41, // T
    0.013_30, // W
    0.032_16, // Y
    0.064_41, // V
];

/// Normalise a 20-long count vector into frequencies; falls back to
/// [`ROBINSON_FREQS`] when the counts are all zero.
pub fn normalise_counts(counts: &[u64; 20]) -> [f64; 20] {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return ROBINSON_FREQS;
    }
    let mut out = [0.0; 20];
    for (o, &c) in out.iter_mut().zip(counts.iter()) {
        *o = c as f64 / total as f64;
    }
    out
}

/// Observed frequencies of the standard residues in a set of sequences
/// (non-standard residues are ignored).
pub fn observed_freqs<'a>(seqs: impl Iterator<Item = &'a [u8]>) -> [f64; 20] {
    let mut counts = [0u64; 20];
    for seq in seqs {
        for &c in seq {
            if (c as usize) < 20 {
                counts[c as usize] += 1;
            }
        }
    }
    normalise_counts(&counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn robinson_sums_to_one() {
        let sum: f64 = ROBINSON_FREQS.iter().sum();
        assert!((sum - 1.0).abs() < 1e-3, "sum {sum}");
    }

    #[test]
    fn robinson_all_positive() {
        assert!(ROBINSON_FREQS.iter().all(|&p| p > 0.0));
    }

    #[test]
    fn normalise_counts_basic() {
        let mut counts = [0u64; 20];
        counts[0] = 3;
        counts[1] = 1;
        let f = normalise_counts(&counts);
        assert!((f[0] - 0.75).abs() < 1e-12);
        assert!((f[1] - 0.25).abs() < 1e-12);
        assert_eq!(f[2], 0.0);
    }

    #[test]
    fn normalise_zero_falls_back() {
        assert_eq!(normalise_counts(&[0; 20]), ROBINSON_FREQS);
    }

    #[test]
    fn observed_ignores_nonstandard() {
        use psc_seqio::alphabet::encode_protein;
        let s = encode_protein(b"AAXX**R");
        let f = observed_freqs(std::iter::once(s.as_slice()));
        assert!((f[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((f[1] - 1.0 / 3.0).abs() < 1e-12);
    }
}
