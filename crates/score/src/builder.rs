//! Constructing BLOSUM-style matrices from aligned blocks
//! (Henikoff & Henikoff, PNAS 1992 — the paper's reference \[8\]).
//!
//! The BLOSUM *algorithm*: take ungapped alignment blocks, cluster the
//! sequences of each block at ≥ L % identity (BLOSUM-L) and down-weight
//! each cluster to one vote, count substitution pairs between clusters
//! column by column, and emit the log-odds of observed pair frequencies
//! over background expectation in half-bit units.
//!
//! The canonical BLOSUM62 ships pre-built in [`crate::matrix`]; this
//! module exists so the scoring system itself is reproducible — e.g.
//! building a matrix from `psc-datagen` families and verifying it
//! behaves like a substitution matrix should (see the tests and the
//! `matrix_from_blocks` example assertions).

use psc_seqio::alphabet::{AA_ALPHABET_LEN, AA_STANDARD_LEN};

use crate::matrix::SubstitutionMatrix;

/// One ungapped alignment block: rows are sequences, all the same
/// length, standard residues only.
#[derive(Clone, Debug)]
pub struct Block {
    pub rows: Vec<Vec<u8>>,
}

impl Block {
    pub fn new(rows: Vec<Vec<u8>>) -> Block {
        assert!(!rows.is_empty(), "block needs rows");
        let len = rows[0].len();
        assert!(len > 0, "block needs columns");
        for r in &rows {
            assert_eq!(r.len(), len, "ragged block");
            assert!(
                r.iter().all(|&c| (c as usize) < AA_STANDARD_LEN),
                "blocks must be standard residues only"
            );
        }
        Block { rows }
    }

    fn width(&self) -> usize {
        self.rows[0].len()
    }
}

/// Percent identity between two equal-length rows.
fn identity(a: &[u8], b: &[u8]) -> f64 {
    let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
    same as f64 / a.len() as f64
}

/// Single-linkage clustering of a block's rows at the given identity
/// threshold; returns a cluster id per row.
fn cluster_rows(block: &Block, threshold: f64) -> Vec<usize> {
    let n = block.rows.len();
    // Union-find.
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let root = find(parent, parent[x]);
            parent[x] = root;
        }
        parent[x]
    }
    for i in 0..n {
        for j in i + 1..n {
            if identity(&block.rows[i], &block.rows[j]) >= threshold {
                let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
                if ri != rj {
                    parent[ri] = rj;
                }
            }
        }
    }
    (0..n).map(|i| find(&mut parent, i)).collect()
}

/// Pair-frequency accumulator over the 20 standard residues.
#[derive(Clone, Debug)]
pub struct PairCounts {
    counts: Vec<f64>, // 20×20, symmetric
}

impl Default for PairCounts {
    fn default() -> Self {
        PairCounts {
            counts: vec![0.0; AA_STANDARD_LEN * AA_STANDARD_LEN],
        }
    }
}

impl PairCounts {
    fn add(&mut self, a: u8, b: u8, weight: f64) {
        self.counts[a as usize * AA_STANDARD_LEN + b as usize] += weight;
        if a != b {
            self.counts[b as usize * AA_STANDARD_LEN + a as usize] += weight;
        }
    }

    fn total(&self) -> f64 {
        // Each unordered pair counted once: diagonal + upper triangle.
        let mut t = 0.0;
        for i in 0..AA_STANDARD_LEN {
            for j in i..AA_STANDARD_LEN {
                t += self.counts[i * AA_STANDARD_LEN + j];
            }
        }
        t
    }
}

/// Accumulate inter-cluster substitution pairs from one block.
fn count_block(block: &Block, clusters: &[usize], counts: &mut PairCounts) {
    let n = block.rows.len();
    // Cluster sizes for weighting: each cluster contributes one
    // "average sequence".
    let mut size = vec![0usize; n];
    for &c in clusters {
        size[c] += 1;
    }
    for col in 0..block.width() {
        for i in 0..n {
            for j in i + 1..n {
                if clusters[i] == clusters[j] {
                    continue; // within-cluster pairs carry no signal
                }
                let w = 1.0 / (size[clusters[i]] as f64 * size[clusters[j]] as f64);
                counts.add(block.rows[i][col], block.rows[j][col], w);
            }
        }
    }
}

/// Build a BLOSUM-L–style matrix from blocks.
///
/// `clustering` is the BLOSUM level as a fraction (0.62 for BLOSUM62).
/// Scores are half-bit log-odds, rounded to the nearest integer;
/// unobserved pairs get the most negative observed score. The 4
/// non-standard rows/columns are filled conventionally (X = weighted
/// average ≈ −1, `*` = min).
pub fn build_blosum(name: &str, blocks: &[Block], clustering: f64) -> SubstitutionMatrix {
    assert!((0.0..=1.0).contains(&clustering));
    let mut counts = PairCounts::default();
    for block in blocks {
        let clusters = cluster_rows(block, clustering);
        count_block(block, &clusters, &mut counts);
    }
    let total = counts.total();
    assert!(total > 0.0, "no inter-cluster pairs observed");

    // q_ij over unordered pairs; marginals p_i = q_ii + Σ_{j≠i} q_ij/2.
    let q = |i: usize, j: usize| -> f64 { counts.counts[i * AA_STANDARD_LEN + j] / total };
    let mut p = [0.0f64; AA_STANDARD_LEN];
    for (i, pi) in p.iter_mut().enumerate() {
        *pi = q(i, i);
        for j in 0..AA_STANDARD_LEN {
            if j != i {
                *pi += q(i, j) / 2.0;
            }
        }
    }

    let mut flat = [0i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN];
    let mut min_score = 0i32;
    for i in 0..AA_STANDARD_LEN {
        for j in 0..AA_STANDARD_LEN {
            let expected = if i == j {
                p[i] * p[j]
            } else {
                2.0 * p[i] * p[j]
            };
            let observed = if i == j { q(i, i) } else { q(i, j) };
            let s = if observed > 0.0 && expected > 0.0 {
                (2.0 * (observed / expected).log2()).round() as i32
            } else {
                i32::MIN // fill below
            };
            if s != i32::MIN {
                min_score = min_score.min(s);
            }
            flat[i * AA_ALPHABET_LEN + j] = s.clamp(-128, 127) as i8;
        }
    }
    // Unobserved pairs → most negative observed score.
    let fill = min_score.clamp(-128, 0) as i8;
    for i in 0..AA_STANDARD_LEN {
        for j in 0..AA_STANDARD_LEN {
            if flat[i * AA_ALPHABET_LEN + j] == i8::MIN {
                flat[i * AA_ALPHABET_LEN + j] = fill;
            }
        }
    }
    // Non-standard rows: B/Z ≈ average of their members, X ≈ -1, * = min.
    for ns in AA_STANDARD_LEN..AA_ALPHABET_LEN {
        for other in 0..AA_ALPHABET_LEN {
            let v = match ns {
                23 => fill, // '*'
                _ => -1,    // B, Z, X simplified
            };
            flat[ns * AA_ALPHABET_LEN + other] = v;
            flat[other * AA_ALPHABET_LEN + ns] = v;
        }
    }
    flat[23 * AA_ALPHABET_LEN + 23] = 1; // conventional */* reward

    SubstitutionMatrix::from_flat(name, flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::freqs::ROBINSON_FREQS;
    use crate::karlin::compute_lambda;
    use psc_seqio::alphabet::encode_protein;

    /// Blocks generated from the BLOSUM62-tilted mutation model of
    /// `psc-datagen`: one ancestor per block, members diverged ~50 %
    /// with no indels (blocks are ungapped by definition). Because the
    /// substitutions are drawn from the BLOSUM62 pair model, the rebuilt
    /// matrix should *correlate* with BLOSUM62 — which is exactly what
    /// the tests check.
    fn model_blocks(count: usize, rows: usize, len: usize) -> Vec<Block> {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0xb105);
        let cfg = psc_datagen::MutationConfig {
            divergence: 0.5,
            indel_rate: 0.0,
            indel_extend: 0.0,
        };
        (0..count)
            .map(|_| {
                let ancestor = psc_datagen::random_protein(&mut rng, len);
                let members: Vec<Vec<u8>> = (0..rows)
                    .map(|_| psc_datagen::mutate_protein(&mut rng, &ancestor, &cfg))
                    .collect();
                Block::new(members)
            })
            .collect()
    }

    #[test]
    fn built_matrix_is_a_substitution_matrix() {
        let m = build_blosum("MODEL62", &model_blocks(40, 6, 120), 0.62);
        assert!(m.is_symmetric());
        // Identities must score positively for every standard residue.
        for c in 0..20u8 {
            assert!(m.score(c, c) > 0, "diagonal for {c}: {}", m.score(c, c));
        }
        // And a usable local-alignment system: λ exists.
        let lambda = compute_lambda(&m, &ROBINSON_FREQS);
        assert!(lambda.is_some(), "expected score must be negative");
    }

    #[test]
    fn rebuilt_matrix_correlates_with_blosum62() {
        // The generator substitutes residues according to BLOSUM62's
        // implied pair model, so rebuilding a matrix from its output
        // must recover BLOSUM62's structure (up to sampling noise and
        // the divergence level). Check the Pearson correlation over all
        // standard pairs.
        let m = build_blosum("MODEL62", &model_blocks(60, 6, 150), 0.62);
        let b = crate::matrix::blosum62();
        let (mut sx, mut sy, mut sxx, mut syy, mut sxy, mut n) =
            (0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for i in 0..20u8 {
            for j in 0..=i {
                let x = m.score(i, j) as f64;
                let y = b.score(i, j) as f64;
                sx += x;
                sy += y;
                sxx += x * x;
                syy += y * y;
                sxy += x * y;
                n += 1.0;
            }
        }
        let r = (n * sxy - sx * sy) / ((n * sxx - sx * sx).sqrt() * (n * syy - sy * sy).sqrt());
        assert!(r > 0.6, "correlation with BLOSUM62 too weak: {r:.3}");
    }

    #[test]
    fn conservative_exchanges_outscore_random_ones() {
        // The mutation model exchanges I↔V and K↔R far more often than
        // chemically distant pairs.
        let m = build_blosum("MODEL62", &model_blocks(40, 6, 120), 0.62);
        let aa = |c: u8| psc_seqio::Aa::from_ascii_lossy(c).0;
        assert!(m.score(aa(b'I'), aa(b'V')) > m.score(aa(b'C'), aa(b'G')));
        assert!(m.score(aa(b'K'), aa(b'R')) > m.score(aa(b'W'), aa(b'P')));
    }

    #[test]
    fn clustering_level_changes_the_matrix() {
        // Members are ~50% diverged from the ancestor (≈35-45% pairwise),
        // so a 30% clustering threshold merges them while 90% keeps them
        // apart: the two settings must count pairs differently.
        let blocks = model_blocks(30, 6, 120);
        let high = build_blosum("MODEL-HI", &blocks, 0.90);
        let low = build_blosum("MODEL-LO", &blocks, 0.30);
        assert_ne!(high.flat()[..], low.flat()[..]);
    }

    #[test]
    fn cluster_rows_links_similar() {
        let block = Block::new(vec![
            encode_protein(b"MKVLAWMKVLAW"),
            encode_protein(b"MKVLAWMKVLAV"), // 92% id to row 0
            encode_protein(b"GGGGGGGGGGGG"), // unrelated
        ]);
        let clusters = cluster_rows(&block, 0.8);
        assert_eq!(clusters[0], clusters[1]);
        assert_ne!(clusters[0], clusters[2]);
        // Strict threshold: all separate.
        let clusters = cluster_rows(&block, 0.99);
        assert_ne!(clusters[0], clusters[1]);
    }

    #[test]
    #[should_panic]
    fn ragged_blocks_rejected() {
        Block::new(vec![encode_protein(b"MKV"), encode_protein(b"MK")]);
    }

    #[test]
    #[should_panic]
    fn nonstandard_blocks_rejected() {
        Block::new(vec![encode_protein(b"MKX")]);
    }

    #[test]
    fn pair_counts_symmetry() {
        let mut c = PairCounts::default();
        c.add(3, 7, 1.0);
        c.add(7, 3, 0.5);
        assert!((c.counts[3 * 20 + 7] - 1.5).abs() < 1e-12);
        assert!((c.counts[7 * 20 + 3] - 1.5).abs() < 1e-12);
        assert!((c.total() - 1.5).abs() < 1e-12);
        c.add(2, 2, 2.0);
        assert!((c.total() - 3.5).abs() < 1e-12);
    }
}
