//! Property tests for the sequence substrate.

use proptest::prelude::*;
use psc_seqio::alphabet::{decode_dna, decode_protein, encode_dna, encode_protein, AA_LETTERS};
use psc_seqio::seq::reverse_complement_codes;
use psc_seqio::{
    read_fasta, translate_six_frames, write_fasta, Bank, Frame, FrameCoord, GeneticCode, Seq,
    SeqKind,
};

/// Arbitrary protein ASCII drawn from the full 24-letter alphabet.
fn protein_ascii() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(AA_LETTERS.to_vec()), 0..200)
}

fn dna_ascii() -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(proptest::sample::select(b"ACGTN".to_vec()), 0..300)
}

proptest! {
    #[test]
    fn protein_encode_decode_round_trip(ascii in protein_ascii()) {
        prop_assert_eq!(decode_protein(&encode_protein(&ascii)), ascii);
    }

    #[test]
    fn dna_encode_decode_round_trip(ascii in dna_ascii()) {
        prop_assert_eq!(decode_dna(&encode_dna(&ascii)), ascii);
    }

    #[test]
    fn reverse_complement_involution(ascii in dna_ascii()) {
        let codes = encode_dna(&ascii);
        prop_assert_eq!(
            reverse_complement_codes(&reverse_complement_codes(&codes)),
            codes
        );
    }

    #[test]
    fn frame_lengths_match_geometry(ascii in dna_ascii()) {
        let g = Seq::dna("g", &ascii);
        let t = translate_six_frames(&g, GeneticCode::standard());
        for frame in Frame::ALL {
            let k = match frame { Frame::Plus(k) | Frame::Minus(k) => k as usize };
            let expected = ascii.len().saturating_sub(k) / 3;
            prop_assert_eq!(t.frame(frame).len(), expected);
        }
    }

    /// Every translated position maps to an in-bounds genomic codon, and
    /// forward-frame codons re-translate to the same residue.
    #[test]
    fn genome_intervals_in_bounds(ascii in dna_ascii()) {
        let g = Seq::dna("g", &ascii);
        let code = GeneticCode::standard();
        let t = translate_six_frames(&g, code);
        for frame in Frame::ALL {
            let prot = t.frame(frame);
            for aa_pos in 0..prot.len() {
                let (s, e, fwd) = t.to_genome_interval(FrameCoord { frame, aa_pos }, 1);
                prop_assert_eq!(e - s, 3);
                prop_assert!(e <= ascii.len());
                if fwd {
                    let aa = code.translate_codes(&g.residues[s..e]);
                    prop_assert_eq!(aa.0, prot.residues[aa_pos]);
                } else {
                    let rc = reverse_complement_codes(&g.residues[s..e]);
                    let aa = code.translate_codes(&rc);
                    prop_assert_eq!(aa.0, prot.residues[aa_pos]);
                }
            }
        }
    }

    /// FASTA write→read is the identity on banks (ids without whitespace).
    #[test]
    fn fasta_round_trip(
        seqs in proptest::collection::vec(protein_ascii(), 1..8)
    ) {
        let bank: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::protein(format!("s{i}"), s))
            .collect();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &bank).unwrap();
        let back = read_fasta(&buf[..], SeqKind::Protein).unwrap();
        prop_assert_eq!(back.len(), bank.len());
        for i in 0..bank.len() {
            prop_assert_eq!(&back.get(i).id, &bank.get(i).id);
            prop_assert_eq!(&back.get(i).residues, &bank.get(i).residues);
        }
    }
}
