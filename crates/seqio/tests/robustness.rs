//! Robustness: the I/O boundary must never panic, whatever bytes arrive.

use proptest::prelude::*;
use psc_seqio::fasta::{read_fasta_with, ResiduePolicy};
use psc_seqio::{read_fasta, SeqKind};

proptest! {
    /// Arbitrary bytes: the parser returns Ok or Err, never panics, and
    /// any parsed bank holds only valid residue codes.
    #[test]
    fn parser_total_on_arbitrary_bytes(data in proptest::collection::vec(any::<u8>(), 0..2000)) {
        for kind in [SeqKind::Protein, SeqKind::Dna] {
            if let Ok(bank) = read_fasta(&data[..], kind) {
                let limit = match kind {
                    SeqKind::Protein => 24,
                    SeqKind::Dna => 5,
                };
                for (_, s) in bank.iter() {
                    prop_assert!(s.residues.iter().all(|&c| c < limit));
                }
            }
            // Strict mode likewise must be total.
            let _ = read_fasta_with(&data[..], kind, ResiduePolicy::Strict);
        }
    }

    /// FASTA-shaped noise: headers plus arbitrary residue lines.
    #[test]
    fn parser_total_on_fastaish_noise(
        records in proptest::collection::vec(
            ("[ -~]{0,30}", proptest::collection::vec(any::<u8>(), 0..120)),
            0..6
        )
    ) {
        let mut data = Vec::new();
        for (header, body) in &records {
            data.extend_from_slice(b">");
            data.extend_from_slice(header.as_bytes());
            data.push(b'\n');
            data.extend_from_slice(body);
            data.push(b'\n');
        }
        let _ = read_fasta(&data[..], SeqKind::Protein);
        let _ = read_fasta(&data[..], SeqKind::Dna);
    }

    /// Masking is total and only ever substitutes X for standard codes.
    #[test]
    fn masking_total(residues in proptest::collection::vec(0u8..24, 0..500)) {
        let cfg = psc_seqio::MaskConfig::default();
        let masked = psc_seqio::mask_low_complexity(&residues, &cfg);
        prop_assert_eq!(masked.len(), residues.len());
        for (&m, &o) in masked.iter().zip(&residues) {
            prop_assert!(m == o || m == psc_seqio::Aa::X.0);
        }
    }
}
