//! A bank: an ordered collection of sequences treated as one data set.
//!
//! The paper's algorithm compares *two banks* (a protein bank and the
//! six-frame-translated genome). A `Bank` offers the flat view the indexer
//! needs — global residue counts and `(sequence, offset)` addressing.

use crate::seq::{Seq, SeqKind};

/// An ordered set of sequences of one alphabet.
#[derive(Clone, Debug, Default)]
pub struct Bank {
    seqs: Vec<Seq>,
    total_residues: usize,
}

impl Bank {
    /// Empty bank.
    pub fn new() -> Bank {
        Bank::default()
    }

    /// Build from sequences. All sequences must share one alphabet.
    pub fn from_seqs(seqs: Vec<Seq>) -> Bank {
        if let Some(first) = seqs.first() {
            let kind = first.kind;
            assert!(
                seqs.iter().all(|s| s.kind == kind),
                "bank mixes DNA and protein sequences"
            );
        }
        let total_residues = seqs.iter().map(Seq::len).sum();
        Bank {
            seqs,
            total_residues,
        }
    }

    /// Append one sequence.
    pub fn push(&mut self, seq: Seq) {
        if let Some(first) = self.seqs.first() {
            assert_eq!(first.kind, seq.kind, "bank mixes DNA and protein");
        }
        self.total_residues += seq.len();
        self.seqs.push(seq);
    }

    /// Number of sequences.
    #[inline]
    pub fn len(&self) -> usize {
        self.seqs.len()
    }

    /// True when the bank holds no sequences.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seqs.is_empty()
    }

    /// Total residues across all sequences.
    #[inline]
    pub fn total_residues(&self) -> usize {
        self.total_residues
    }

    /// Alphabet of the bank (`None` when empty).
    pub fn kind(&self) -> Option<SeqKind> {
        self.seqs.first().map(|s| s.kind)
    }

    /// Sequence accessor.
    #[inline]
    pub fn get(&self, i: usize) -> &Seq {
        &self.seqs[i]
    }

    /// All sequences.
    #[inline]
    pub fn seqs(&self) -> &[Seq] {
        &self.seqs
    }

    /// Consume into the sequence vector.
    pub fn into_seqs(self) -> Vec<Seq> {
        self.seqs
    }

    /// Iterate `(index, sequence)`.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Seq)> {
        self.seqs.iter().enumerate()
    }

    /// Mean sequence length (0 for an empty bank).
    pub fn mean_len(&self) -> f64 {
        if self.seqs.is_empty() {
            0.0
        } else {
            self.total_residues as f64 / self.seqs.len() as f64
        }
    }
}

impl FromIterator<Seq> for Bank {
    fn from_iter<T: IntoIterator<Item = Seq>>(iter: T) -> Bank {
        Bank::from_seqs(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_track_pushes() {
        let mut b = Bank::new();
        assert!(b.is_empty());
        assert_eq!(b.kind(), None);
        b.push(Seq::protein("a", b"MK"));
        b.push(Seq::protein("b", b"MKVL"));
        assert_eq!(b.len(), 2);
        assert_eq!(b.total_residues(), 6);
        assert!((b.mean_len() - 3.0).abs() < 1e-12);
        assert_eq!(b.kind(), Some(SeqKind::Protein));
        assert_eq!(b.get(1).id, "b");
    }

    #[test]
    #[should_panic]
    fn mixed_alphabets_rejected() {
        let mut b = Bank::new();
        b.push(Seq::protein("a", b"MK"));
        b.push(Seq::dna("d", b"ACGT"));
    }

    #[test]
    fn from_iterator_collects() {
        let b: Bank = (0..3)
            .map(|i| Seq::protein(format!("s{i}"), b"MKV"))
            .collect();
        assert_eq!(b.len(), 3);
        assert_eq!(b.total_residues(), 9);
    }
}
