//! Residue alphabets and their compact `u8` encodings.
//!
//! Amino acids use the NCBIstdaa-like ordering `A R N D C Q E G H I L K M F
//! P S T W Y V B Z X *` (indices 0–23), which is also the row/column order
//! of the embedded BLOSUM/PAM matrices in `psc-score`. Nucleotides use
//! `A C G T` (0–3) with `N = 4` for ambiguity.

/// Number of encoded amino-acid symbols (20 standard + B, Z, X, `*`).
pub const AA_ALPHABET_LEN: usize = 24;

/// Number of standard (unambiguous) amino acids.
pub const AA_STANDARD_LEN: usize = 20;

/// Number of encoded nucleotide symbols (A, C, G, T, N).
pub const NT_ALPHABET_LEN: usize = 5;

/// ASCII letters in encoding order for amino acids.
pub const AA_LETTERS: [u8; AA_ALPHABET_LEN] = *b"ARNDCQEGHILKMFPSTWYVBZX*";

/// ASCII letters in encoding order for nucleotides.
pub const NT_LETTERS: [u8; NT_ALPHABET_LEN] = *b"ACGTN";

/// An encoded amino acid (0..=23).
///
/// The wrapper is deliberately thin: hot loops read `.0` directly, while the
/// constructors centralise ASCII conversion and validity checks.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Aa(pub u8);

impl Aa {
    /// Ambiguous residue `X`.
    pub const X: Aa = Aa(22);
    /// Translation stop `*`.
    pub const STOP: Aa = Aa(23);

    /// Decode an ASCII letter (case-insensitive). Unknown letters map to `X`.
    #[inline]
    pub fn from_ascii_lossy(c: u8) -> Aa {
        Aa(AA_FROM_ASCII[c as usize])
    }

    /// Decode an ASCII letter, rejecting anything outside the alphabet.
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Aa> {
        let code = AA_FROM_ASCII_STRICT[c as usize];
        (code != INVALID).then_some(Aa(code))
    }

    /// The ASCII letter for this residue.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        AA_LETTERS[self.0 as usize]
    }

    /// True for the 20 standard amino acids (excludes B, Z, X, `*`).
    #[inline]
    pub fn is_standard(self) -> bool {
        (self.0 as usize) < AA_STANDARD_LEN
    }

    /// Iterate over the 20 standard amino acids.
    pub fn standard() -> impl Iterator<Item = Aa> {
        (0..AA_STANDARD_LEN as u8).map(Aa)
    }

    /// Iterate over all 24 encoded symbols.
    pub fn all() -> impl Iterator<Item = Aa> {
        (0..AA_ALPHABET_LEN as u8).map(Aa)
    }
}

/// An encoded nucleotide (0..=4).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Nt(pub u8);

impl Nt {
    pub const A: Nt = Nt(0);
    pub const C: Nt = Nt(1);
    pub const G: Nt = Nt(2);
    pub const T: Nt = Nt(3);
    /// Ambiguity code; any IUPAC ambiguity letter collapses to `N`.
    pub const N: Nt = Nt(4);

    /// Decode an ASCII letter (case-insensitive, `U` treated as `T`).
    /// Unknown letters map to `N`.
    #[inline]
    pub fn from_ascii_lossy(c: u8) -> Nt {
        Nt(NT_FROM_ASCII[c as usize])
    }

    /// Decode an ASCII letter, rejecting anything that is not
    /// `ACGTUN` (case-insensitive).
    #[inline]
    pub fn from_ascii(c: u8) -> Option<Nt> {
        let code = NT_FROM_ASCII_STRICT[c as usize];
        (code != INVALID).then_some(Nt(code))
    }

    /// The ASCII letter for this nucleotide.
    #[inline]
    pub fn to_ascii(self) -> u8 {
        NT_LETTERS[self.0 as usize]
    }

    /// Watson–Crick complement; `N` complements to `N`.
    #[inline]
    pub fn complement(self) -> Nt {
        match self {
            Nt::A => Nt::T,
            Nt::C => Nt::G,
            Nt::G => Nt::C,
            Nt::T => Nt::A,
            _ => Nt::N,
        }
    }

    /// Iterate over the four unambiguous nucleotides.
    pub fn standard() -> impl Iterator<Item = Nt> {
        (0..4u8).map(Nt)
    }
}

const INVALID: u8 = 0xFF;

/// Build the lossy amino-acid decode table at compile time.
const fn build_aa_from_ascii(lossy: bool) -> [u8; 256] {
    let mut table = [if lossy { 22u8 } else { INVALID }; 256]; // default: X / invalid
    let mut i = 0;
    while i < AA_ALPHABET_LEN {
        let c = AA_LETTERS[i];
        table[c as usize] = i as u8;
        // Lower-case aliases (skip '*').
        if c.is_ascii_uppercase() {
            table[(c + 32) as usize] = i as u8;
        }
        i += 1;
    }
    // Selenocysteine U and pyrrolysine O are rare; map to C and K (their
    // closest standard residues) in both tables, matching BLAST behaviour.
    table[b'U' as usize] = 4; // C
    table[b'u' as usize] = 4;
    table[b'O' as usize] = 11; // K
    table[b'o' as usize] = 11;
    // J = I or L ambiguity; fold to X only in the lossy table.
    if lossy {
        table[b'J' as usize] = 22;
        table[b'j' as usize] = 22;
    }
    table
}

const fn build_nt_from_ascii(lossy: bool) -> [u8; 256] {
    let mut table = [if lossy { 4u8 } else { INVALID }; 256]; // default: N / invalid
    let pairs: [(u8, u8); 6] = [
        (b'A', 0),
        (b'C', 1),
        (b'G', 2),
        (b'T', 3),
        (b'U', 3),
        (b'N', 4),
    ];
    let mut i = 0;
    while i < pairs.len() {
        let (c, code) = pairs[i];
        table[c as usize] = code;
        table[(c + 32) as usize] = code;
        i += 1;
    }
    table
}

static AA_FROM_ASCII: [u8; 256] = build_aa_from_ascii(true);
static AA_FROM_ASCII_STRICT: [u8; 256] = build_aa_from_ascii(false);
static NT_FROM_ASCII: [u8; 256] = build_nt_from_ascii(true);
static NT_FROM_ASCII_STRICT: [u8; 256] = build_nt_from_ascii(false);

/// Encode an ASCII protein string into residue codes (lossy).
pub fn encode_protein(s: &[u8]) -> Vec<u8> {
    s.iter().map(|&c| Aa::from_ascii_lossy(c).0).collect()
}

/// Encode an ASCII DNA string into nucleotide codes (lossy).
pub fn encode_dna(s: &[u8]) -> Vec<u8> {
    s.iter().map(|&c| Nt::from_ascii_lossy(c).0).collect()
}

/// Decode residue codes back to ASCII protein letters.
pub fn decode_protein(codes: &[u8]) -> Vec<u8> {
    codes.iter().map(|&c| Aa(c).to_ascii()).collect()
}

/// Decode nucleotide codes back to ASCII DNA letters.
pub fn decode_dna(codes: &[u8]) -> Vec<u8> {
    codes.iter().map(|&c| Nt(c).to_ascii()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aa_ascii_round_trip() {
        for aa in Aa::all() {
            assert_eq!(Aa::from_ascii_lossy(aa.to_ascii()), aa);
            assert_eq!(Aa::from_ascii(aa.to_ascii()), Some(aa));
        }
    }

    #[test]
    fn aa_lower_case_decodes() {
        assert_eq!(Aa::from_ascii_lossy(b'a'), Aa(0));
        assert_eq!(Aa::from_ascii_lossy(b'v'), Aa(19));
        assert_eq!(Aa::from_ascii(b'w'), Some(Aa(17)));
    }

    #[test]
    fn aa_unknown_maps_to_x() {
        assert_eq!(Aa::from_ascii_lossy(b'?'), Aa::X);
        assert_eq!(Aa::from_ascii_lossy(b'1'), Aa::X);
        assert_eq!(Aa::from_ascii(b'?'), None);
    }

    #[test]
    fn aa_rare_residues_fold_to_neighbours() {
        // U (selenocysteine) -> C, O (pyrrolysine) -> K.
        assert_eq!(Aa::from_ascii_lossy(b'U').to_ascii(), b'C');
        assert_eq!(Aa::from_ascii_lossy(b'O').to_ascii(), b'K');
    }

    #[test]
    fn aa_standard_set() {
        assert_eq!(Aa::standard().count(), 20);
        assert!(Aa::standard().all(|a| a.is_standard()));
        assert!(!Aa::X.is_standard());
        assert!(!Aa::STOP.is_standard());
        assert_eq!(Aa::STOP.to_ascii(), b'*');
    }

    #[test]
    fn nt_ascii_round_trip() {
        for code in 0..NT_ALPHABET_LEN as u8 {
            let nt = Nt(code);
            assert_eq!(Nt::from_ascii_lossy(nt.to_ascii()), nt);
        }
        assert_eq!(Nt::from_ascii_lossy(b'u'), Nt::T);
        assert_eq!(Nt::from_ascii_lossy(b'R'), Nt::N); // IUPAC ambiguity
        assert_eq!(Nt::from_ascii(b'R'), None);
    }

    #[test]
    fn nt_complement_is_involution() {
        for nt in Nt::standard() {
            assert_eq!(nt.complement().complement(), nt);
            assert_ne!(nt.complement(), nt);
        }
        assert_eq!(Nt::N.complement(), Nt::N);
    }

    #[test]
    fn encode_decode_round_trip() {
        let p = b"MKVLAW*XBZ";
        assert_eq!(decode_protein(&encode_protein(p)), p.to_vec());
        let d = b"ACGTNACGT";
        assert_eq!(decode_dna(&encode_dna(d)), d.to_vec());
    }
}
