//! Six-frame translation of genomic DNA with coordinate mapping.
//!
//! The paper's workload translates a genome "into its 6 possible protein
//! frames" and compares the resulting virtual proteins against a protein
//! bank. [`TranslatedGenome`] keeps, for each frame, the translated
//! residues plus enough geometry to map any amino-acid position back to the
//! nucleotide interval it came from — needed when reporting alignments in
//! genome coordinates (step 3).

use crate::alphabet::Nt;
use crate::bank::Bank;
use crate::codon::GeneticCode;
use crate::seq::{reverse_complement_codes, Seq, SeqKind};

/// One of the six reading frames.
///
/// `Plus(k)` reads the forward strand starting at nucleotide offset `k`;
/// `Minus(k)` reads the reverse complement starting at offset `k` of the
/// reverse-complemented sequence (the convention used by BLAST frames
/// +1..+3 / -1..-3 with `k = frame - 1`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Frame {
    Plus(u8),
    Minus(u8),
}

impl Frame {
    /// All six frames in the conventional order +1,+2,+3,-1,-2,-3.
    pub const ALL: [Frame; 6] = [
        Frame::Plus(0),
        Frame::Plus(1),
        Frame::Plus(2),
        Frame::Minus(0),
        Frame::Minus(1),
        Frame::Minus(2),
    ];

    /// BLAST-style signed frame number (+1..+3, -1..-3).
    pub fn number(self) -> i8 {
        match self {
            Frame::Plus(k) => k as i8 + 1,
            Frame::Minus(k) => -(k as i8 + 1),
        }
    }

    /// Index 0..6 in [`Frame::ALL`] order.
    pub fn index(self) -> usize {
        match self {
            Frame::Plus(k) => k as usize,
            Frame::Minus(k) => 3 + k as usize,
        }
    }
}

impl std::fmt::Display for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:+}", self.number())
    }
}

/// A position in a translated frame: which frame, and the amino-acid offset
/// within that frame's translation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FrameCoord {
    pub frame: Frame,
    pub aa_pos: usize,
}

/// The six-frame translation of one genomic sequence.
#[derive(Clone, Debug)]
pub struct TranslatedGenome {
    /// Genome identifier the frames came from.
    pub genome_id: String,
    /// Length of the source genome in nucleotides.
    pub genome_len: usize,
    /// Translations in [`Frame::ALL`] order.
    frames: [Seq; 6],
}

impl TranslatedGenome {
    /// Reassemble a translation from persisted parts (an index-bundle
    /// load). `frames` must be in [`Frame::ALL`] order, as produced by
    /// [`translate_six_frames`].
    pub fn from_parts(genome_id: String, genome_len: usize, frames: [Seq; 6]) -> TranslatedGenome {
        TranslatedGenome {
            genome_id,
            genome_len,
            frames,
        }
    }

    /// Translated sequence for a frame.
    pub fn frame(&self, frame: Frame) -> &Seq {
        &self.frames[frame.index()]
    }

    /// All six frames in [`Frame::ALL`] order.
    pub fn frames(&self) -> &[Seq; 6] {
        &self.frames
    }

    /// View the six frames as a protein [`Bank`] (frame order preserved:
    /// bank sequence `i` is `Frame::ALL[i]`).
    pub fn to_bank(&self) -> Bank {
        Bank::from_seqs(self.frames.to_vec())
    }

    /// Map an amino-acid interval `[aa_start, aa_end)` of a frame back to
    /// the genomic nucleotide interval `[start, end)` on the forward
    /// strand. Returns `(start, end, is_forward_strand)`.
    pub fn to_genome_interval(&self, coord: FrameCoord, aa_len: usize) -> (usize, usize, bool) {
        let nt_span = aa_len * 3;
        match coord.frame {
            Frame::Plus(k) => {
                let start = k as usize + coord.aa_pos * 3;
                (start, start + nt_span, true)
            }
            Frame::Minus(k) => {
                // Position p of the reverse complement maps to genome
                // position L-1-p; a codon [s, s+3) on the rc therefore maps
                // to [L-s-3, L-s) on the genome.
                let rc_start = k as usize + coord.aa_pos * 3;
                let end = self.genome_len - rc_start;
                (end - nt_span, end, false)
            }
        }
    }
}

/// Translate a DNA sequence into its six reading frames.
///
/// Codons containing `N` translate to `X`; stop codons are kept as `*`
/// residues (the indexer refuses to seed across them, mirroring BLAST).
pub fn translate_six_frames(genome: &Seq, code: &GeneticCode) -> TranslatedGenome {
    assert_eq!(genome.kind, SeqKind::Dna, "six-frame translation needs DNA");
    let fwd = &genome.residues;
    let rev = reverse_complement_codes(fwd);

    let translate_strand = |codes: &[u8], offset: usize, label: &str| -> Seq {
        let n = codes.len().saturating_sub(offset) / 3;
        let mut residues = Vec::with_capacity(n);
        let mut i = offset;
        while i + 3 <= codes.len() {
            residues.push(
                code.translate(Nt(codes[i]), Nt(codes[i + 1]), Nt(codes[i + 2]))
                    .0,
            );
            i += 3;
        }
        Seq::from_codes(
            format!("{}|frame{}", genome.id, label),
            residues,
            SeqKind::Protein,
        )
    };

    let frames = [
        translate_strand(fwd, 0, "+1"),
        translate_strand(fwd, 1, "+2"),
        translate_strand(fwd, 2, "+3"),
        translate_strand(&rev, 0, "-1"),
        translate_strand(&rev, 1, "-2"),
        translate_strand(&rev, 2, "-3"),
    ];

    TranslatedGenome {
        genome_id: genome.id.clone(),
        genome_len: genome.len(),
        frames,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_numbers_and_indices() {
        assert_eq!(Frame::Plus(0).number(), 1);
        assert_eq!(Frame::Minus(2).number(), -3);
        for (i, f) in Frame::ALL.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        assert_eq!(Frame::Minus(0).to_string(), "-1");
    }

    #[test]
    fn forward_frames_translate() {
        // ATG GCC TAA -> M A *
        let g = Seq::dna("g", b"ATGGCCTAA");
        let t = translate_six_frames(&g, GeneticCode::standard());
        assert_eq!(t.frame(Frame::Plus(0)).to_ascii(), b"MA*");
        // Frame +2: TGG CCT AA -> W P (trailing two nts dropped)
        assert_eq!(t.frame(Frame::Plus(1)).to_ascii(), b"WP");
        // Frame +3: GGC CTA A -> G L
        assert_eq!(t.frame(Frame::Plus(2)).to_ascii(), b"GL");
    }

    #[test]
    fn reverse_frames_translate() {
        // Genome ATGGCCTAA, rc = TTAGGCCAT.
        let g = Seq::dna("g", b"ATGGCCTAA");
        let t = translate_six_frames(&g, GeneticCode::standard());
        // -1: TTA GGC CAT -> L G H
        assert_eq!(t.frame(Frame::Minus(0)).to_ascii(), b"LGH");
        // -2: TAG GCC AT -> * A
        assert_eq!(t.frame(Frame::Minus(1)).to_ascii(), b"*A");
        // -3: AGG CCA T -> R P
        assert_eq!(t.frame(Frame::Minus(2)).to_ascii(), b"RP");
    }

    #[test]
    fn genome_interval_forward() {
        let g = Seq::dna("g", b"ATGGCCTAA");
        let t = translate_six_frames(&g, GeneticCode::standard());
        // Frame +1, aa 1..3 ("A*") covers nts 3..9.
        let (s, e, fwd) = t.to_genome_interval(
            FrameCoord {
                frame: Frame::Plus(0),
                aa_pos: 1,
            },
            2,
        );
        assert_eq!((s, e, fwd), (3, 9, true));
        // Frame +2, aa 0..1 covers nts 1..4.
        let (s, e, _) = t.to_genome_interval(
            FrameCoord {
                frame: Frame::Plus(1),
                aa_pos: 0,
            },
            1,
        );
        assert_eq!((s, e), (1, 4));
    }

    #[test]
    fn genome_interval_reverse() {
        let g = Seq::dna("g", b"ATGGCCTAA"); // L = 9
        let t = translate_six_frames(&g, GeneticCode::standard());
        // Frame -1, aa 0 is codon 0..3 of the rc, i.e. genome nts 6..9.
        let (s, e, fwd) = t.to_genome_interval(
            FrameCoord {
                frame: Frame::Minus(0),
                aa_pos: 0,
            },
            1,
        );
        assert_eq!((s, e, fwd), (6, 9, false));
        // Frame -2, aa 1 is rc codon 4..7, genome nts 2..5.
        let (s, e, _) = t.to_genome_interval(
            FrameCoord {
                frame: Frame::Minus(1),
                aa_pos: 1,
            },
            1,
        );
        assert_eq!((s, e), (2, 5));
    }

    /// The genome interval reported for a reverse-frame hit must, when
    /// reverse complemented and translated, reproduce the frame residues.
    #[test]
    fn reverse_interval_consistency() {
        let g = Seq::dna("g", b"GATTACAGATTACACCGTTAGGA");
        let code = GeneticCode::standard();
        let t = translate_six_frames(&g, code);
        for &frame in &[Frame::Minus(0), Frame::Minus(1), Frame::Minus(2)] {
            let prot = t.frame(frame);
            for aa_pos in 0..prot.len() {
                let (s, e, fwd) = t.to_genome_interval(FrameCoord { frame, aa_pos }, 1);
                assert!(!fwd);
                let codon = reverse_complement_codes(&g.residues[s..e]);
                assert_eq!(code.translate_codes(&codon).0, prot.residues[aa_pos]);
            }
        }
    }

    #[test]
    fn short_genome_yields_empty_frames() {
        let g = Seq::dna("g", b"AC");
        let t = translate_six_frames(&g, GeneticCode::standard());
        for f in Frame::ALL {
            assert!(t.frame(f).is_empty());
        }
        let bank = t.to_bank();
        assert_eq!(bank.len(), 6);
        assert_eq!(bank.total_residues(), 0);
    }
}
