//! Byte-oriented FASTA reading and writing.
//!
//! The parser is strict about structure (headers must start with `>`, a
//! record must have an identifier) but lossy about residues by default —
//! unknown letters become `X`/`N`, matching how BLAST-family tools treat
//! real-world bank files. A strict mode rejects them instead.

use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::alphabet::{Aa, Nt};
use crate::bank::Bank;
use crate::error::SeqError;
use crate::seq::{Seq, SeqKind};

/// Residue policy for the parser.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ResiduePolicy {
    /// Unknown letters collapse to the alphabet's ambiguity code.
    Lossy,
    /// Unknown letters are an error.
    Strict,
}

/// Read a FASTA stream into a [`Bank`] of the given alphabet (lossy).
pub fn read_fasta<R: Read>(reader: R, kind: SeqKind) -> Result<Bank, SeqError> {
    read_fasta_with(reader, kind, ResiduePolicy::Lossy)
}

/// Read a FASTA file from disk (lossy).
pub fn read_fasta_path(path: impl AsRef<Path>, kind: SeqKind) -> Result<Bank, SeqError> {
    read_fasta(File::open(path)?, kind)
}

/// Read a FASTA stream with an explicit residue policy.
pub fn read_fasta_with<R: Read>(
    reader: R,
    kind: SeqKind,
    policy: ResiduePolicy,
) -> Result<Bank, SeqError> {
    let mut reader = BufReader::new(reader);
    let mut seqs: Vec<Seq> = Vec::new();
    let mut current: Option<Seq> = None;
    let mut line = Vec::with_capacity(256);
    let mut lineno = 0usize;

    loop {
        line.clear();
        let n = reader.read_until(b'\n', &mut line)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        // Trim trailing newline / carriage return.
        while matches!(line.last(), Some(b'\n') | Some(b'\r')) {
            line.pop();
        }
        if line.is_empty() {
            continue;
        }
        if line[0] == b'>' {
            if let Some(seq) = current.take() {
                seqs.push(seq);
            }
            let header = &line[1..];
            let header_str = String::from_utf8_lossy(header);
            let mut words = header_str.splitn(2, char::is_whitespace);
            let id = words.next().unwrap_or("").trim().to_string();
            if id.is_empty() {
                return Err(SeqError::Fasta {
                    line: lineno,
                    msg: "record header has no identifier".into(),
                });
            }
            let description = words.next().unwrap_or("").trim().to_string();
            current = Some(Seq {
                id,
                description,
                residues: Vec::new(),
                kind,
            });
        } else {
            let seq = current.as_mut().ok_or_else(|| SeqError::Fasta {
                line: lineno,
                msg: "sequence data before any '>' header".into(),
            })?;
            for &c in line.iter() {
                if c.is_ascii_whitespace() {
                    continue;
                }
                let code = match (kind, policy) {
                    (SeqKind::Protein, ResiduePolicy::Lossy) => Aa::from_ascii_lossy(c).0,
                    (SeqKind::Dna, ResiduePolicy::Lossy) => Nt::from_ascii_lossy(c).0,
                    (SeqKind::Protein, ResiduePolicy::Strict) => {
                        Aa::from_ascii(c)
                            .ok_or_else(|| SeqError::InvalidResidue {
                                record: seq.id.clone(),
                                byte: c,
                            })?
                            .0
                    }
                    (SeqKind::Dna, ResiduePolicy::Strict) => {
                        Nt::from_ascii(c)
                            .ok_or_else(|| SeqError::InvalidResidue {
                                record: seq.id.clone(),
                                byte: c,
                            })?
                            .0
                    }
                };
                seq.residues.push(code);
            }
        }
    }
    if let Some(seq) = current.take() {
        seqs.push(seq);
    }
    Ok(Bank::from_seqs(seqs))
}

/// Write a bank as FASTA with 70-column wrapping.
pub fn write_fasta<W: Write>(writer: W, bank: &Bank) -> Result<(), SeqError> {
    const WIDTH: usize = 70;
    let mut w = BufWriter::new(writer);
    for (_, seq) in bank.iter() {
        if seq.description.is_empty() {
            writeln!(w, ">{}", seq.id)?;
        } else {
            writeln!(w, ">{} {}", seq.id, seq.description)?;
        }
        let ascii = seq.to_ascii();
        for chunk in ascii.chunks(WIDTH) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    w.flush()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str, kind: SeqKind) -> Bank {
        read_fasta(s.as_bytes(), kind).unwrap()
    }

    #[test]
    fn parses_two_records() {
        let bank = parse(">a first protein\nMKV\nLAW\n>b\nGG\n", SeqKind::Protein);
        assert_eq!(bank.len(), 2);
        assert_eq!(bank.get(0).id, "a");
        assert_eq!(bank.get(0).description, "first protein");
        assert_eq!(bank.get(0).to_ascii(), b"MKVLAW");
        assert_eq!(bank.get(1).to_ascii(), b"GG");
    }

    #[test]
    fn skips_blank_lines_and_crlf() {
        let bank = parse(">a\r\nMK\r\n\r\nVL\r\n", SeqKind::Protein);
        assert_eq!(bank.get(0).to_ascii(), b"MKVL");
    }

    #[test]
    fn data_before_header_is_error() {
        let err = read_fasta("MKV\n".as_bytes(), SeqKind::Protein).unwrap_err();
        assert!(matches!(err, SeqError::Fasta { line: 1, .. }));
    }

    #[test]
    fn empty_header_is_error() {
        let err = read_fasta(">   \nMKV\n".as_bytes(), SeqKind::Protein).unwrap_err();
        assert!(matches!(err, SeqError::Fasta { .. }));
    }

    #[test]
    fn lossy_vs_strict_residues() {
        let bank = parse(">a\nMK?V\n", SeqKind::Protein);
        assert_eq!(bank.get(0).to_ascii(), b"MKXV");
        let err = read_fasta_with(
            ">a\nMK?V\n".as_bytes(),
            SeqKind::Protein,
            ResiduePolicy::Strict,
        )
        .unwrap_err();
        assert!(matches!(err, SeqError::InvalidResidue { byte: b'?', .. }));
    }

    #[test]
    fn dna_parsing_folds_iupac() {
        let bank = parse(">g\nACGTRYSWacgtu\n", SeqKind::Dna);
        assert_eq!(bank.get(0).to_ascii(), b"ACGTNNNNACGTT");
    }

    #[test]
    fn write_read_round_trip() {
        let mut bank = Bank::new();
        bank.push(Seq::protein("p1", b"MKVLAWGG"));
        let mut seq2 = Seq::protein("p2", &[b'A'; 200]);
        seq2.description = "long one".into();
        bank.push(seq2);
        let mut buf = Vec::new();
        write_fasta(&mut buf, &bank).unwrap();
        let back = read_fasta(&buf[..], SeqKind::Protein).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.get(0).residues, bank.get(0).residues);
        assert_eq!(back.get(1).residues, bank.get(1).residues);
        assert_eq!(back.get(1).description, "long one");
        // 200 residues at width 70 -> lines of 70/70/60.
        let text = String::from_utf8(buf).unwrap();
        assert!(text.lines().any(|l| l.len() == 60));
    }

    #[test]
    fn empty_input_is_empty_bank() {
        let bank = parse("", SeqKind::Protein);
        assert!(bank.is_empty());
    }
}
