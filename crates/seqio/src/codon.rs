//! The genetic code: codon → amino-acid translation.
//!
//! Only the standard code (NCBI translation table 1) ships built in — the
//! paper's workload is eukaryotic genome annotation — but [`GeneticCode`]
//! accepts any 64-letter table, so alternative codes (mitochondrial,
//! bacterial initiators…) can be constructed by callers.

use crate::alphabet::{Aa, Nt};

/// The 64-codon translation string in classic TCAG order (first base cycles
/// slowest), as printed in the NCBI translation-table registry.
const STANDARD_TCAG: &[u8; 64] =
    b"FFLLSSSSYY**CC*WLLLLPPPPHHQQRRRRIIIMTTTTNNKKSSRRVVVVAAAADDEEGGGG";

/// A codon translation table over encoded nucleotides.
#[derive(Clone, Debug)]
pub struct GeneticCode {
    /// Indexed by `nt0*16 + nt1*4 + nt2` with our A=0,C=1,G=2,T=3 encoding.
    table: [Aa; 64],
}

impl GeneticCode {
    /// The standard genetic code (translation table 1).
    pub fn standard() -> &'static GeneticCode {
        static STANDARD: std::sync::OnceLock<GeneticCode> = std::sync::OnceLock::new();
        STANDARD.get_or_init(|| GeneticCode::from_tcag_string(STANDARD_TCAG))
    }

    /// Build from a 64-letter amino-acid string in TCAG order (the order
    /// used by the NCBI genetic-code registry).
    pub fn from_tcag_string(tcag: &[u8; 64]) -> GeneticCode {
        // TCAG order position of each of our encoded bases A,C,G,T.
        const TCAG_POS: [usize; 4] = [2, 1, 3, 0]; // A→2, C→1, G→3, T→0
        let mut table = [Aa::X; 64];
        for b0 in 0..4 {
            for b1 in 0..4 {
                for b2 in 0..4 {
                    let tcag_idx = TCAG_POS[b0] * 16 + TCAG_POS[b1] * 4 + TCAG_POS[b2];
                    table[b0 * 16 + b1 * 4 + b2] = Aa::from_ascii_lossy(tcag[tcag_idx]);
                }
            }
        }
        GeneticCode { table }
    }

    /// Translate one codon of encoded nucleotides. Any ambiguous base (`N`)
    /// yields `X`.
    #[inline]
    pub fn translate(&self, n0: Nt, n1: Nt, n2: Nt) -> Aa {
        if n0.0 >= 4 || n1.0 >= 4 || n2.0 >= 4 {
            return Aa::X;
        }
        self.table[(n0.0 as usize) * 16 + (n1.0 as usize) * 4 + n2.0 as usize]
    }

    /// Translate a codon given as a 3-byte slice of encoded nucleotides.
    #[inline]
    pub fn translate_codes(&self, codon: &[u8]) -> Aa {
        debug_assert_eq!(codon.len(), 3);
        self.translate(Nt(codon[0]), Nt(codon[1]), Nt(codon[2]))
    }

    /// All codons (as encoded triples) that translate to `aa`.
    pub fn codons_for(&self, aa: Aa) -> Vec<[u8; 3]> {
        let mut out = Vec::new();
        for idx in 0..64usize {
            if self.table[idx] == aa {
                out.push([(idx / 16) as u8, ((idx / 4) % 4) as u8, (idx % 4) as u8]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_dna;

    fn tr(code: &GeneticCode, s: &str) -> u8 {
        code.translate_codes(&encode_dna(s.as_bytes())).to_ascii()
    }

    #[test]
    fn canonical_codons() {
        let c = GeneticCode::standard();
        assert_eq!(tr(c, "ATG"), b'M');
        assert_eq!(tr(c, "TGG"), b'W');
        assert_eq!(tr(c, "TAA"), b'*');
        assert_eq!(tr(c, "TAG"), b'*');
        assert_eq!(tr(c, "TGA"), b'*');
        assert_eq!(tr(c, "TTT"), b'F');
        assert_eq!(tr(c, "AAA"), b'K');
        assert_eq!(tr(c, "GGG"), b'G');
        assert_eq!(tr(c, "CGA"), b'R');
        assert_eq!(tr(c, "AGA"), b'R');
        assert_eq!(tr(c, "ATA"), b'I');
        assert_eq!(tr(c, "GAT"), b'D');
        assert_eq!(tr(c, "GAA"), b'E');
    }

    #[test]
    fn ambiguous_base_gives_x() {
        let c = GeneticCode::standard();
        assert_eq!(tr(c, "ANG"), b'X');
        assert_eq!(tr(c, "NNN"), b'X');
    }

    #[test]
    fn degeneracy_counts() {
        let c = GeneticCode::standard();
        // Leucine, serine and arginine each have 6 codons; methionine and
        // tryptophan have 1; there are 3 stops.
        assert_eq!(c.codons_for(Aa::from_ascii_lossy(b'L')).len(), 6);
        assert_eq!(c.codons_for(Aa::from_ascii_lossy(b'S')).len(), 6);
        assert_eq!(c.codons_for(Aa::from_ascii_lossy(b'R')).len(), 6);
        assert_eq!(c.codons_for(Aa::from_ascii_lossy(b'M')).len(), 1);
        assert_eq!(c.codons_for(Aa::from_ascii_lossy(b'W')).len(), 1);
        assert_eq!(c.codons_for(Aa::STOP).len(), 3);
    }

    #[test]
    fn all_64_codons_translate_to_standard_or_stop() {
        let c = GeneticCode::standard();
        let mut count = 0;
        for aa in Aa::standard() {
            count += c.codons_for(aa).len();
        }
        count += c.codons_for(Aa::STOP).len();
        assert_eq!(count, 64);
    }
}
