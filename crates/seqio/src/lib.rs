//! # psc-seqio — biological sequence substrate
//!
//! Foundation crate for the RASC-100 seed-based comparison reproduction:
//! residue alphabets and their compact encodings, sequence and bank
//! containers, FASTA parsing/serialisation, the standard genetic code, and
//! six-frame translation of nucleotide sequences with coordinate mapping
//! back to the genome.
//!
//! Everything downstream (indexing, scoring, the PSC operator simulator)
//! works on the compact `u8` residue codes defined by [`alphabet`]; ASCII
//! only appears at the I/O boundary.

#![forbid(unsafe_code)]

pub mod alphabet;
pub mod bank;
pub mod codon;
pub mod complexity;
pub mod error;
pub mod fasta;
pub mod seq;
pub mod translate;

pub use alphabet::{Aa, Nt, AA_ALPHABET_LEN, NT_ALPHABET_LEN};
pub use bank::Bank;
pub use codon::GeneticCode;
pub use complexity::{mask_low_complexity, MaskConfig};
pub use error::SeqError;
pub use fasta::{read_fasta, read_fasta_path, write_fasta};
pub use seq::{Seq, SeqKind};
pub use translate::{translate_six_frames, Frame, FrameCoord, TranslatedGenome};
