//! Sequence container: an identified string of encoded residues.

use crate::alphabet::{self, Aa, Nt};

/// Whether a sequence holds encoded nucleotides or amino acids.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SeqKind {
    Dna,
    Protein,
}

/// A named sequence of residue codes (see [`crate::alphabet`] for encodings).
///
/// Residues are stored encoded, never as ASCII: downstream indexing and
/// scoring address substitution tables directly with `residues[i]`.
#[derive(Clone, PartialEq, Eq, Debug)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Seq {
    /// Identifier (first word of the FASTA header).
    pub id: String,
    /// Rest of the FASTA header, if any.
    pub description: String,
    /// Encoded residues.
    pub residues: Vec<u8>,
    /// Alphabet of `residues`.
    pub kind: SeqKind,
}

impl Seq {
    /// Build a protein sequence from ASCII letters (lossy: unknown → `X`).
    pub fn protein(id: impl Into<String>, ascii: &[u8]) -> Seq {
        Seq {
            id: id.into(),
            description: String::new(),
            residues: alphabet::encode_protein(ascii),
            kind: SeqKind::Protein,
        }
    }

    /// Build a DNA sequence from ASCII letters (lossy: unknown → `N`).
    pub fn dna(id: impl Into<String>, ascii: &[u8]) -> Seq {
        Seq {
            id: id.into(),
            description: String::new(),
            residues: alphabet::encode_dna(ascii),
            kind: SeqKind::Dna,
        }
    }

    /// Build directly from already-encoded residues.
    pub fn from_codes(id: impl Into<String>, residues: Vec<u8>, kind: SeqKind) -> Seq {
        Seq {
            id: id.into(),
            description: String::new(),
            residues,
            kind,
        }
    }

    /// Residue count.
    #[inline]
    pub fn len(&self) -> usize {
        self.residues.len()
    }

    /// True when the sequence holds no residues.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.residues.is_empty()
    }

    /// ASCII rendering of the residues.
    pub fn to_ascii(&self) -> Vec<u8> {
        match self.kind {
            SeqKind::Dna => alphabet::decode_dna(&self.residues),
            SeqKind::Protein => alphabet::decode_protein(&self.residues),
        }
    }

    /// Reverse complement (DNA only; panics on protein input — that is a
    /// programming error, not a data error).
    pub fn reverse_complement(&self) -> Seq {
        assert_eq!(self.kind, SeqKind::Dna, "reverse_complement needs DNA");
        let residues = reverse_complement_codes(&self.residues);
        Seq {
            id: self.id.clone(),
            description: self.description.clone(),
            residues,
            kind: SeqKind::Dna,
        }
    }

    /// Fraction of ambiguous residues (`N` or `X`/`*` depending on kind).
    pub fn ambiguity_fraction(&self) -> f64 {
        if self.residues.is_empty() {
            return 0.0;
        }
        let ambiguous = match self.kind {
            SeqKind::Dna => self.residues.iter().filter(|&&c| c == Nt::N.0).count(),
            SeqKind::Protein => self
                .residues
                .iter()
                .filter(|&&c| c >= Aa::X.0) // X or *
                .count(),
        };
        ambiguous as f64 / self.residues.len() as f64
    }
}

/// Reverse-complement encoded nucleotides.
pub fn reverse_complement_codes(codes: &[u8]) -> Vec<u8> {
    codes.iter().rev().map(|&c| Nt(c).complement().0).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protein_constructor_encodes() {
        let s = Seq::protein("p", b"MKV");
        assert_eq!(s.kind, SeqKind::Protein);
        assert_eq!(s.to_ascii(), b"MKV");
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
    }

    #[test]
    fn reverse_complement_known() {
        let s = Seq::dna("d", b"ACGTN");
        assert_eq!(s.reverse_complement().to_ascii(), b"NACGT");
    }

    #[test]
    fn reverse_complement_involution() {
        let s = Seq::dna("d", b"GATTACAGATTACA");
        assert_eq!(s.reverse_complement().reverse_complement(), s);
    }

    #[test]
    #[should_panic]
    fn reverse_complement_rejects_protein() {
        Seq::protein("p", b"MKV").reverse_complement();
    }

    #[test]
    fn ambiguity_fraction_counts() {
        let s = Seq::dna("d", b"ACGN");
        assert!((s.ambiguity_fraction() - 0.25).abs() < 1e-12);
        let p = Seq::protein("p", b"MKX*");
        assert!((p.ambiguity_fraction() - 0.5).abs() < 1e-12);
        let e = Seq::protein("e", b"");
        assert_eq!(e.ambiguity_fraction(), 0.0);
    }
}
