//! Low-complexity masking (a SEG-like entropy filter).
//!
//! BLAST-family tools mask low-complexity protein segments (poly-X runs,
//! short-period repeats) before seeding, because such segments generate
//! floods of spurious word hits. This module implements the standard
//! windowed Shannon-entropy criterion: a window whose residue entropy
//! falls below a trigger is masked to `X`, with hysteresis via a second
//! (higher) extension threshold, approximating SEG's trigger/extension
//! K2 parameters.

use crate::alphabet::{Aa, AA_STANDARD_LEN};

/// Masker parameters.
#[derive(Clone, Copy, Debug)]
pub struct MaskConfig {
    /// Window length (SEG default: 12).
    pub window: usize,
    /// Entropy (bits) below which a window triggers masking
    /// (SEG's K2 trigger ≈ 2.2 bits).
    pub trigger: f64,
    /// Entropy below which masking, once triggered, keeps extending
    /// (SEG's K2 extension ≈ 2.5 bits).
    pub extend: f64,
}

impl Default for MaskConfig {
    fn default() -> Self {
        MaskConfig {
            window: 12,
            trigger: 2.2,
            extend: 2.5,
        }
    }
}

/// Shannon entropy (bits) of the residue distribution in `window`.
/// Non-standard residues participate as one extra symbol class.
pub fn window_entropy(window: &[u8]) -> f64 {
    if window.is_empty() {
        return 0.0;
    }
    let mut counts = [0u32; AA_STANDARD_LEN + 1];
    for &c in window {
        let idx = (c as usize).min(AA_STANDARD_LEN);
        counts[idx] += 1;
    }
    let n = window.len() as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// Return a masked copy of `residues`: positions covered by a
/// low-entropy window become `X`. Sequences shorter than the window are
/// returned unchanged.
pub fn mask_low_complexity(residues: &[u8], config: &MaskConfig) -> Vec<u8> {
    let w = config.window;
    if residues.len() < w || w == 0 {
        return residues.to_vec();
    }
    // Two-threshold sweep: a triggered region keeps extending while
    // window entropy stays below the (laxer) extension threshold.
    let mut mask = vec![false; residues.len()];
    let mut in_region = false;
    for start in 0..=residues.len() - w {
        let h = window_entropy(&residues[start..start + w]);
        let masked = if in_region {
            h < config.extend
        } else {
            h < config.trigger
        };
        if masked {
            for m in &mut mask[start..start + w] {
                *m = true;
            }
        }
        in_region = masked;
    }
    residues
        .iter()
        .zip(&mask)
        .map(|(&c, &m)| if m { Aa::X.0 } else { c })
        .collect()
}

/// Fraction of positions a masking pass would cover (diagnostics).
pub fn masked_fraction(residues: &[u8], config: &MaskConfig) -> f64 {
    if residues.is_empty() {
        return 0.0;
    }
    let masked = mask_low_complexity(residues, config);
    let n = masked
        .iter()
        .zip(residues)
        .filter(|&(&m, &o)| m == Aa::X.0 && o != Aa::X.0)
        .count();
    n as f64 / residues.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::encode_protein;

    fn masked_ascii(s: &[u8]) -> Vec<u8> {
        let codes = mask_low_complexity(&encode_protein(s), &MaskConfig::default());
        crate::alphabet::decode_protein(&codes)
    }

    #[test]
    fn entropy_extremes() {
        // Mono-residue: zero entropy.
        assert_eq!(window_entropy(&encode_protein(b"AAAAAAAAAAAA")), 0.0);
        // 12 distinct residues: log2(12) ≈ 3.58 bits.
        let h = window_entropy(&encode_protein(b"ARNDCQEGHILK"));
        assert!((h - 12f64.log2()).abs() < 1e-9);
        // Empty window well-defined.
        assert_eq!(window_entropy(&[]), 0.0);
    }

    #[test]
    fn poly_runs_get_masked() {
        let out = masked_ascii(b"MKVLAWRNDCQEAAAAAAAAAAAAAAAAMKVLAWRNDCQE");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("XXXXXXXXXXXX"), "{text}");
        // The outer complex flanks survive; windows straddling the run
        // boundary legitimately mask a few flank residues (SEG behaves
        // the same way).
        assert!(text.starts_with("MKVLAW"), "{text}");
        assert!(text.ends_with("NDCQE"), "{text}");
    }

    #[test]
    fn two_letter_repeats_get_masked() {
        // Period-2 repeats have 1 bit of entropy — well under trigger.
        let out = masked_ascii(b"MKVLAWRNDCQESTSTSTSTSTSTSTSTSTSTMKVLAWRNDCQE");
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("XXXXXXXX"), "{text}");
    }

    #[test]
    fn complex_sequence_untouched() {
        let s = b"MKVLAWRNDCQEHFYWGPSTIMKVLAWRNDCQEHFYWGPSTI";
        let out = masked_ascii(s);
        assert_eq!(out, s.to_vec());
        let frac = masked_fraction(&encode_protein(s), &MaskConfig::default());
        assert_eq!(frac, 0.0);
    }

    #[test]
    fn short_sequences_pass_through() {
        let s = encode_protein(b"AAAA"); // shorter than the window
        assert_eq!(mask_low_complexity(&s, &MaskConfig::default()), s);
    }

    #[test]
    fn masked_fraction_scales() {
        let mixed = encode_protein(b"MKVLAWRNDCQEAAAAAAAAAAAAAAAAAAAAAAAAAAAA");
        let frac = masked_fraction(&mixed, &MaskConfig::default());
        assert!(frac > 0.4 && frac < 0.95, "frac {frac}");
    }

    #[test]
    fn hysteresis_extends_through_borderline_windows() {
        // A low-complexity core flanked by slightly-more-diverse repeat:
        // without hysteresis the flank windows (entropy between trigger
        // and extend) would be kept; with it they are masked.
        let seq = encode_protein(b"STSTSTATATSTSTSTSTSTSTATATSTST");
        let strict = MaskConfig {
            trigger: 1.2,
            extend: 1.2,
            ..MaskConfig::default()
        };
        let hyst = MaskConfig {
            trigger: 1.2,
            extend: 1.9,
            ..MaskConfig::default()
        };
        let masked_strict = mask_low_complexity(&seq, &strict)
            .iter()
            .filter(|&&c| c == Aa::X.0)
            .count();
        let masked_hyst = mask_low_complexity(&seq, &hyst)
            .iter()
            .filter(|&&c| c == Aa::X.0)
            .count();
        assert!(masked_hyst >= masked_strict);
    }
}
