//! Error type shared by the sequence-I/O layer.

use std::fmt;
use std::io;

/// Errors produced while reading or manipulating sequences.
#[derive(Debug)]
pub enum SeqError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// FASTA syntax problem (`line` is 1-based).
    Fasta { line: usize, msg: String },
    /// A sequence contained a character outside the expected alphabet.
    InvalidResidue { record: String, byte: u8 },
    /// A request referenced a sequence or coordinate that does not exist.
    OutOfBounds(String),
}

impl fmt::Display for SeqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqError::Io(e) => write!(f, "I/O error: {e}"),
            SeqError::Fasta { line, msg } => write!(f, "FASTA parse error at line {line}: {msg}"),
            SeqError::InvalidResidue { record, byte } => write!(
                f,
                "invalid residue byte 0x{byte:02x} ({:?}) in record {record}",
                *byte as char
            ),
            SeqError::OutOfBounds(msg) => write!(f, "out of bounds: {msg}"),
        }
    }
}

impl std::error::Error for SeqError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SeqError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SeqError {
    fn from(e: io::Error) -> Self {
        SeqError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = SeqError::Fasta {
            line: 3,
            msg: "empty header".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = SeqError::InvalidResidue {
            record: "q1".into(),
            byte: b'?',
        };
        assert!(e.to_string().contains("q1"));
        let e = SeqError::from(io::Error::new(io::ErrorKind::NotFound, "nope"));
        assert!(e.to_string().contains("nope"));
        assert!(std::error::Error::source(&e).is_some());
    }
}
