//! Protein-bank-vs-genome search: the paper's actual workload.
//!
//! Translates the genome into its six reading frames, runs the pipeline
//! with the frames as bank 1, and maps the resulting HSPs back to
//! forward-strand genomic coordinates.

use psc_score::SubstitutionMatrix;
use psc_seqio::{Bank, Frame, Seq};

use crate::config::PipelineConfig;
use crate::engine::SearchEngine;
use crate::pipeline::{PipelineError, PipelineOutput};

/// One reported protein-to-genome match.
#[derive(Clone, Debug)]
pub struct GenomeMatch {
    /// Index and id of the protein in the query bank.
    pub protein_idx: usize,
    pub protein_id: String,
    /// Reading frame the hit was found in.
    pub frame: Frame,
    /// Forward-strand genomic interval `[start, end)` in nucleotides.
    pub genome_start: usize,
    pub genome_end: usize,
    /// True when the coding strand is the forward strand.
    pub forward: bool,
    /// Protein residue range `[start, end)` of the alignment.
    pub protein_start: usize,
    pub protein_end: usize,
    /// Scores.
    pub score: i32,
    pub bit_score: f64,
    pub evalue: f64,
}

/// Result of a genome search.
#[derive(Clone, Debug)]
pub struct GenomeSearchResult {
    /// Matches in ascending E-value order.
    pub matches: Vec<GenomeMatch>,
    /// The underlying pipeline output (profile, stats, board report);
    /// its `hsps` are in frame coordinates.
    pub output: PipelineOutput,
}

/// Compare a protein bank against a genome (the paper's tblastn-style
/// workload), reporting genomic coordinates.
///
/// Panics on configuration errors; use [`try_search_genome`] to handle
/// them.
pub fn search_genome(
    proteins: &Bank,
    genome: &Seq,
    matrix: &SubstitutionMatrix,
    config: PipelineConfig,
) -> GenomeSearchResult {
    search_genome_recorded(
        proteins,
        genome,
        matrix,
        config,
        &psc_telemetry::NullRecorder,
    )
}

/// [`search_genome`], surfacing configuration errors.
pub fn try_search_genome(
    proteins: &Bank,
    genome: &Seq,
    matrix: &SubstitutionMatrix,
    config: PipelineConfig,
) -> Result<GenomeSearchResult, PipelineError> {
    try_search_genome_recorded(
        proteins,
        genome,
        matrix,
        config,
        &psc_telemetry::NullRecorder,
    )
}

/// [`search_genome`] with telemetry recording (see
/// [`Pipeline::run_recorded`]).
///
/// Panics on configuration errors; use
/// [`try_search_genome_recorded`] to handle them.
pub fn search_genome_recorded(
    proteins: &Bank,
    genome: &Seq,
    matrix: &SubstitutionMatrix,
    config: PipelineConfig,
    rec: &dyn psc_telemetry::Recorder,
) -> GenomeSearchResult {
    try_search_genome_recorded(proteins, genome, matrix, config, rec)
        .unwrap_or_else(|e| panic!("pipeline configuration error: {e}"))
}

/// [`search_genome_recorded`], surfacing configuration errors.
pub fn try_search_genome_recorded(
    proteins: &Bank,
    genome: &Seq,
    matrix: &SubstitutionMatrix,
    config: PipelineConfig,
    rec: &dyn psc_telemetry::Recorder,
) -> Result<GenomeSearchResult, PipelineError> {
    try_search_genome_traced(
        proteins,
        genome,
        matrix,
        config,
        rec,
        &psc_telemetry::NullTracer,
    )
}

/// [`try_search_genome_recorded`] with a flight recorder attached.
///
/// This is exactly [`SearchEngine::for_genome`] followed by one
/// [`SearchEngine::query_traced`] call — frame translation and the
/// genome-side index build happen here and are attributed to this
/// query's `step1` span, preserving one-shot accounting. A server
/// loading the same state from a bundle answers the same query
/// bit-identically, minus the build time.
///
/// (Frame translation is genuinely part of step 1 in the paper's
/// accounting, but it is cheap — <1 % here; the pipeline times indexing
/// separately either way.)
pub fn try_search_genome_traced(
    proteins: &Bank,
    genome: &Seq,
    matrix: &SubstitutionMatrix,
    config: PipelineConfig,
    rec: &dyn psc_telemetry::Recorder,
    tracer: &dyn psc_telemetry::Tracer,
) -> Result<GenomeSearchResult, PipelineError> {
    SearchEngine::for_genome(genome, matrix, config, rec).query_traced(proteins, rec, tracer)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig};
    use psc_score::blosum62;

    #[test]
    fn recovers_planted_genes() {
        let donors = random_bank(&BankConfig {
            count: 8,
            min_len: 90,
            max_len: 150,
            seed: 41,
        });
        let synth = generate_genome(
            &GenomeConfig {
                len: 60_000,
                gene_count: 10,
                mutation: MutationConfig {
                    divergence: 0.15,
                    indel_rate: 0.002,
                    indel_extend: 0.3,
                },
                seed: 42,
                ..GenomeConfig::default()
            },
            &donors,
        );
        assert!(!synth.plants.is_empty());
        let result = search_genome(
            &donors,
            &synth.genome,
            blosum62(),
            PipelineConfig::default(),
        );
        assert!(!result.matches.is_empty());
        // Every plant should be hit by its donor protein at roughly the
        // planted interval.
        for plant in &synth.plants {
            let found = result.matches.iter().any(|m| {
                m.protein_idx == plant.protein_idx
                    && m.forward == plant.forward
                    && m.genome_start < plant.end
                    && plant.start < m.genome_end
            });
            assert!(found, "plant {plant:?} not recovered");
        }
        // Matches are sorted by E-value.
        for w in result.matches.windows(2) {
            assert!(w[0].evalue <= w[1].evalue);
        }
    }

    #[test]
    fn genome_without_genes_yields_nothing() {
        let proteins = random_bank(&BankConfig {
            count: 5,
            min_len: 100,
            max_len: 200,
            seed: 7,
        });
        let synth = generate_genome(
            &GenomeConfig {
                len: 30_000,
                gene_count: 0,
                seed: 8,
                ..GenomeConfig::default()
            },
            &psc_seqio::Bank::new(),
        );
        let result = search_genome(
            &proteins,
            &synth.genome,
            blosum62(),
            PipelineConfig::default(),
        );
        assert!(
            result.matches.is_empty(),
            "spurious matches: {:?}",
            result.matches.len()
        );
    }

    #[test]
    fn match_coordinates_are_consistent() {
        let donors = random_bank(&BankConfig {
            count: 3,
            min_len: 80,
            max_len: 120,
            seed: 13,
        });
        let synth = generate_genome(
            &GenomeConfig {
                len: 20_000,
                gene_count: 4,
                mutation: MutationConfig {
                    divergence: 0.0,
                    indel_rate: 0.0,
                    indel_extend: 0.0,
                },
                seed: 14,
                ..GenomeConfig::default()
            },
            &donors,
        );
        let result = search_genome(
            &donors,
            &synth.genome,
            blosum62(),
            PipelineConfig::default(),
        );
        for m in &result.matches {
            assert!(m.genome_end <= synth.genome.len());
            assert!(m.genome_start < m.genome_end);
            assert_eq!((m.genome_end - m.genome_start) % 3, 0);
            assert!(m.protein_end <= donors.get(m.protein_idx).len());
            assert!(m.evalue <= 1e-3);
        }
    }
}
