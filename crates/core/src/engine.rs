//! The persistent query engine: pipeline state split from query state.
//!
//! A [`SearchEngine`] owns everything about a genome that is invariant
//! across queries — the six translated frames, the seeding-view flat
//! bank, the T1 seed index, the scoring matrix and the configuration —
//! built once by [`SearchEngine::for_genome`] or loaded in one read by
//! [`SearchEngine::from_bundle`]. Each [`SearchEngine::query_traced`]
//! call then builds only the cheap per-query state (the protein bank's
//! flat view and index) and runs steps 2 and 3 through
//! [`Pipeline::try_run_prepared_traced`].
//!
//! Because the one-shot [`crate::genome::try_search_genome_traced`]
//! path is itself engine construction followed by one query, a server
//! answering from a loaded bundle produces output bit-identical to a
//! fresh `psc search` by construction — the equivalence the serve-mode
//! tests pin.
//!
//! The engine is plain shared data (`Send + Sync`); a server wraps it
//! in an `Arc` and runs concurrent queries against one instance. Any
//! simulated-board state is created per query, so queries never share
//! mutable state.

use psc_index::bundle::{BundleT0, IndexBundle};
use psc_index::{deserialize_bundle, serialize_bundle, SeedIndex, SerialError};
use psc_score::SubstitutionMatrix;
use psc_seqio::{
    translate_six_frames, Bank, Frame, FrameCoord, GeneticCode, MaskConfig, Seq, TranslatedGenome,
};
use psc_telemetry::{Recorder, Tracer};

use crate::config::PipelineConfig;
use crate::genome::{GenomeMatch, GenomeSearchResult};
use crate::pipeline::{seeding_flat, Pipeline, PipelineError, PreparedBank};

/// Why an engine could not be loaded from a bundle, or a query could
/// not run.
#[derive(Clone, Debug, PartialEq)]
pub enum EngineError {
    /// The artifact failed to parse or verify (bad magic/version,
    /// checksum mismatch, seed-model fingerprint mismatch, …).
    Serial(SerialError),
    /// The artifact parsed but does not match the run configuration
    /// (different matrix or masking than the indexes were built under).
    BundleMismatch(String),
    /// The underlying pipeline rejected the configuration or faulted.
    Pipeline(PipelineError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Serial(e) => write!(f, "index bundle: {e}"),
            EngineError::BundleMismatch(why) => {
                write!(f, "index bundle does not match this run: {why}")
            }
            EngineError::Pipeline(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SerialError> for EngineError {
    fn from(e: SerialError) -> EngineError {
        EngineError::Serial(e)
    }
}

impl From<PipelineError> for EngineError {
    fn from(e: PipelineError) -> EngineError {
        EngineError::Pipeline(e)
    }
}

/// Persistent pipeline state for protein-vs-genome queries.
pub struct SearchEngine {
    pipeline: Pipeline,
    matrix: SubstitutionMatrix,
    translated: TranslatedGenome,
    /// The six frames as bank 1, original residues (the step-3 view).
    frames_bank: Bank,
    /// Seeding view + T1 index of the frames.
    prep1: PreparedBank,
    /// Optional protein-bank section carried by the bundle: reused
    /// (skipping the per-query index build) when a query bank is
    /// sequence-identical to it.
    t0: Option<BundleT0>,
}

impl std::fmt::Debug for SearchEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SearchEngine")
            .field("genome_id", &self.translated.genome_id)
            .field("genome_len", &self.translated.genome_len)
            .field("matrix", &self.matrix.name)
            .field("has_t0", &self.t0.is_some())
            .finish_non_exhaustive()
    }
}

impl SearchEngine {
    /// Build the engine from a genome: translate the six frames and run
    /// step 1 over them. Step-1 telemetry (the bank-1 index span) lands
    /// in `rec`; the build time is attributed to the first query's
    /// `step1` span, preserving one-shot accounting.
    pub fn for_genome(
        genome: &Seq,
        matrix: &SubstitutionMatrix,
        config: PipelineConfig,
        rec: &dyn Recorder,
    ) -> SearchEngine {
        let translated = translate_six_frames(genome, GeneticCode::standard());
        Self::from_translated(translated, matrix, config, rec)
    }

    /// [`SearchEngine::for_genome`] from an existing translation.
    pub fn from_translated(
        translated: TranslatedGenome,
        matrix: &SubstitutionMatrix,
        config: PipelineConfig,
        rec: &dyn Recorder,
    ) -> SearchEngine {
        let pipeline = Pipeline::new(config);
        let frames_bank = translated.to_bank();
        let prep1 = pipeline.prepare_bank(1, &frames_bank, rec);
        SearchEngine {
            pipeline,
            matrix: matrix.clone(),
            translated,
            frames_bank,
            prep1,
            t0: None,
        }
    }

    /// Load the engine from a serialized index bundle.
    ///
    /// The bundle's checksum, seed-model fingerprint, matrix and mask
    /// configuration are all verified against `config`/`matrix` before
    /// anything is used; the T1 index is taken from the artifact (that
    /// is the amortization) while the cheap seeding-view flattening is
    /// recomputed from the stored frames, so query results are
    /// bit-identical to an engine built fresh from the genome.
    pub fn from_bundle(
        data: &[u8],
        matrix: &SubstitutionMatrix,
        config: PipelineConfig,
    ) -> Result<SearchEngine, EngineError> {
        let model = config.seed.model();
        let bundle = deserialize_bundle(data, model.as_ref())?;
        if bundle.matrix != *matrix {
            return Err(EngineError::BundleMismatch(format!(
                "bundle was scored with matrix {}, this run uses {}",
                bundle.matrix.name, matrix.name
            )));
        }
        if !mask_eq(&bundle.mask, &config.mask) {
            return Err(EngineError::BundleMismatch(format!(
                "bundle was built with masking {}, this run uses {}",
                mask_desc(&bundle.mask),
                mask_desc(&config.mask)
            )));
        }
        let frames: [Seq; 6] = bundle
            .frames
            .clone()
            .try_into()
            .map_err(|_| EngineError::Serial(SerialError::Corrupt("bundle frame count")))?;
        let translated =
            TranslatedGenome::from_parts(bundle.genome_id, bundle.genome_len as usize, frames);
        let frames_bank = translated.to_bank();
        let flat1 = seeding_flat(&config.mask, &frames_bank);
        Ok(SearchEngine {
            pipeline: Pipeline::new(config),
            matrix: matrix.clone(),
            translated,
            frames_bank,
            prep1: PreparedBank::from_parts(flat1, bundle.t1),
            t0: bundle.t0,
        })
    }

    /// Serialize the engine's pipeline state as an index bundle.
    /// `proteins` adds the optional T0 section: the bank plus its index
    /// under the same model, letting a later `--index` run skip its own
    /// step-1 build when it queries that exact bank.
    pub fn to_bundle_bytes(&self, proteins: Option<&Bank>) -> Vec<u8> {
        let cfg = self.pipeline.config();
        let model = cfg.seed.model();
        let t0 = proteins.map(|bank| BundleT0 {
            bank: bank.clone(),
            index: SeedIndex::build(
                &seeding_flat(&cfg.mask, bank),
                model.as_ref(),
                cfg.index_threads,
            ),
        });
        let bundle = IndexBundle {
            model_name: model.name(),
            genome_id: self.translated.genome_id.clone(),
            genome_len: self.translated.genome_len as u64,
            frames: self.translated.frames().to_vec(),
            mask: cfg.mask,
            matrix: self.matrix.clone(),
            t1: self.prep1.index().clone(),
            t0,
        };
        serialize_bundle(&bundle, model.as_ref()).to_vec()
    }

    /// The engine's configuration.
    pub fn config(&self) -> &PipelineConfig {
        self.pipeline.config()
    }

    /// Id of the genome this engine serves.
    pub fn genome_id(&self) -> &str {
        &self.translated.genome_id
    }

    /// Genome length in nucleotides.
    pub fn genome_len(&self) -> usize {
        self.translated.genome_len
    }

    /// Whether the engine carries a T0 (protein-bank) section.
    pub fn has_t0(&self) -> bool {
        self.t0.is_some()
    }

    /// Run one query: the per-query state (protein-side step 1) is
    /// built here — or reused from the bundle's T0 section when the
    /// query bank is sequence-identical to it — then steps 2 and 3 run
    /// over the shared pipeline state.
    pub fn query_traced(
        &self,
        proteins: &Bank,
        rec: &dyn Recorder,
        tracer: &dyn Tracer,
    ) -> Result<GenomeSearchResult, PipelineError> {
        let prep0 = match self
            .t0
            .as_ref()
            .filter(|t0| banks_identical(&t0.bank, proteins))
        {
            Some(t0) => PreparedBank::from_parts(
                seeding_flat(&self.pipeline.config().mask, proteins),
                t0.index.clone(),
            ),
            None => self.pipeline.prepare_bank(0, proteins, rec),
        };
        let output = self.pipeline.try_run_prepared_traced(
            proteins,
            &prep0,
            &self.frames_bank,
            &self.prep1,
            &self.matrix,
            rec,
            tracer,
        )?;

        let matches = output
            .hsps
            .iter()
            .map(|h| {
                let frame = Frame::ALL[h.seq1 as usize];
                let aa_len = (h.end1 - h.start1) as usize;
                let (genome_start, genome_end, forward) = self.translated.to_genome_interval(
                    FrameCoord {
                        frame,
                        aa_pos: h.start1 as usize,
                    },
                    aa_len,
                );
                GenomeMatch {
                    protein_idx: h.seq0 as usize,
                    protein_id: proteins.get(h.seq0 as usize).id.clone(),
                    frame,
                    genome_start,
                    genome_end,
                    forward,
                    protein_start: h.start0 as usize,
                    protein_end: h.end0 as usize,
                    score: h.score,
                    bit_score: h.bit_score,
                    evalue: h.evalue,
                }
            })
            .collect();

        Ok(GenomeSearchResult { matches, output })
    }
}

/// Bit-level mask-config equality (f64 thresholds compared by bits: the
/// indexes are only reusable under the *exact* masking they were built
/// with).
fn mask_eq(a: &Option<MaskConfig>, b: &Option<MaskConfig>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.window == y.window
                && x.trigger.to_bits() == y.trigger.to_bits()
                && x.extend.to_bits() == y.extend.to_bits()
        }
        _ => false,
    }
}

fn mask_desc(m: &Option<MaskConfig>) -> String {
    match m {
        None => "off".to_string(),
        Some(c) => format!(
            "on (window {}, trigger {}, extend {})",
            c.window, c.trigger, c.extend
        ),
    }
}

/// Sequence-identical banks: same ids, same residues, same order.
fn banks_identical(a: &Bank, b: &Bank) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b.iter())
            .all(|((_, x), (_, y))| x.id == y.id && x.residues == y.residues)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genome::try_search_genome_traced;
    use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig};
    use psc_score::blosum62;
    use psc_telemetry::{NullRecorder, NullTracer};

    fn workload() -> (Bank, Seq) {
        let donors = random_bank(&BankConfig {
            count: 6,
            min_len: 80,
            max_len: 140,
            seed: 21,
        });
        let synth = generate_genome(
            &GenomeConfig {
                len: 30_000,
                gene_count: 6,
                seed: 22,
                ..GenomeConfig::default()
            },
            &donors,
        );
        (donors, synth.genome)
    }

    fn same_matches(a: &GenomeSearchResult, b: &GenomeSearchResult) {
        assert_eq!(a.matches.len(), b.matches.len());
        for (x, y) in a.matches.iter().zip(&b.matches) {
            assert_eq!(x.protein_idx, y.protein_idx);
            assert_eq!(x.frame, y.frame);
            assert_eq!(
                (x.genome_start, x.genome_end),
                (y.genome_start, y.genome_end)
            );
            assert_eq!(x.score, y.score);
            assert_eq!(x.evalue.to_bits(), y.evalue.to_bits());
        }
    }

    #[test]
    fn bundle_round_trip_preserves_query_results() {
        let (proteins, genome) = workload();
        let matrix = blosum62();
        let config = PipelineConfig::default();
        let fresh = SearchEngine::for_genome(&genome, matrix, config.clone(), &NullRecorder);
        let bytes = fresh.to_bundle_bytes(None);
        let loaded = SearchEngine::from_bundle(&bytes, matrix, config.clone()).unwrap();
        let a = fresh
            .query_traced(&proteins, &NullRecorder, &NullTracer)
            .unwrap();
        let b = loaded
            .query_traced(&proteins, &NullRecorder, &NullTracer)
            .unwrap();
        let oneshot = try_search_genome_traced(
            &proteins,
            &genome,
            matrix,
            config,
            &NullRecorder,
            &NullTracer,
        )
        .unwrap();
        assert!(!a.matches.is_empty());
        same_matches(&a, &b);
        same_matches(&a, &oneshot);
    }

    #[test]
    fn t0_section_is_reused_for_identical_bank() {
        let (proteins, genome) = workload();
        let matrix = blosum62();
        let config = PipelineConfig::default();
        let fresh = SearchEngine::for_genome(&genome, matrix, config.clone(), &NullRecorder);
        let bytes = fresh.to_bundle_bytes(Some(&proteins));
        let loaded = SearchEngine::from_bundle(&bytes, matrix, config).unwrap();
        assert!(loaded.has_t0());
        let a = fresh
            .query_traced(&proteins, &NullRecorder, &NullTracer)
            .unwrap();
        let b = loaded
            .query_traced(&proteins, &NullRecorder, &NullTracer)
            .unwrap();
        same_matches(&a, &b);
        // A different bank must not hit the T0 fast path (results still
        // correct, just rebuilt).
        let other = random_bank(&BankConfig {
            count: 3,
            min_len: 60,
            max_len: 90,
            seed: 77,
        });
        let c = loaded
            .query_traced(&other, &NullRecorder, &NullTracer)
            .unwrap();
        let c2 = fresh
            .query_traced(&other, &NullRecorder, &NullTracer)
            .unwrap();
        same_matches(&c, &c2);
    }

    #[test]
    fn mismatched_matrix_and_mask_are_clean_errors() {
        let (_, genome) = workload();
        let matrix = blosum62();
        let config = PipelineConfig::default();
        let engine = SearchEngine::for_genome(&genome, matrix, config.clone(), &NullRecorder);
        let bytes = engine.to_bundle_bytes(None);

        let mut other = matrix.clone();
        other.name = "OTHER".to_string();
        let err = SearchEngine::from_bundle(&bytes, &other, config.clone()).unwrap_err();
        assert!(matches!(err, EngineError::BundleMismatch(_)), "{err}");

        let masked = PipelineConfig {
            mask: Some(MaskConfig::default()),
            ..config.clone()
        };
        let err = SearchEngine::from_bundle(&bytes, matrix, masked).unwrap_err();
        assert!(matches!(err, EngineError::BundleMismatch(_)), "{err}");

        let exact = PipelineConfig {
            seed: crate::config::SeedChoice::Exact(4),
            ..config
        };
        let err = SearchEngine::from_bundle(&bytes, matrix, exact).unwrap_err();
        assert!(
            matches!(err, EngineError::Serial(SerialError::ModelMismatch { .. })),
            "{err}"
        );
    }
}
