//! Per-step timing, the data behind the paper's Tables 1 and 7.

use psc_align::KernelBackend;

/// Wall/simulated time spent in each pipeline step.
#[derive(Clone, Copy, Debug, Default)]
pub struct StepProfile {
    /// Step 1 (indexing both banks), wall seconds.
    pub step1: f64,
    /// Step 2 wall seconds — for software backends this is the real
    /// cost; for the RASC backend it is the *simulation's* wall cost and
    /// is excluded from the accelerated total.
    pub step2_wall: f64,
    /// Which software kernel backend scored step 2 (None when step 2 ran
    /// entirely on the simulated board).
    pub step2_kernel: Option<KernelBackend>,
    /// Step 2 simulated accelerator seconds (hardware cycles + DMA +
    /// sync), present only for the RASC backend.
    pub step2_accelerated: Option<f64>,
    /// Step 3 (gapped extension + reporting), wall seconds.
    pub step3: f64,
    /// Step 3 simulated accelerator seconds (the proposed gapped
    /// operator), present only for the `RascGapped` backend.
    pub step3_accelerated: Option<f64>,
}

impl StepProfile {
    /// Effective step-2 cost: accelerated time when an accelerator ran,
    /// software wall time otherwise.
    pub fn step2(&self) -> f64 {
        self.step2_accelerated.unwrap_or(self.step2_wall)
    }

    /// Effective step-3 cost (same convention).
    pub fn step3(&self) -> f64 {
        self.step3_accelerated.unwrap_or(self.step3)
    }

    /// Total pipeline time under the same accounting the paper uses
    /// (host steps measured, accelerated steps simulated).
    pub fn total(&self) -> f64 {
        self.step1 + self.step2() + self.step3()
    }

    /// Total when the PSC operator and the gapped operator run
    /// concurrently on the two FPGAs — the "double activity" deployment
    /// of the paper's conclusion. Steps 2 and 3 overlap in steady state,
    /// so the slower of the two bounds the accelerated section.
    pub fn total_concurrent(&self) -> f64 {
        self.step1 + self.step2().max(self.step3())
    }

    /// The three steps as `(name, wall seconds, accelerated seconds)`
    /// rows, the shape run reports serialize.
    pub fn rows(&self) -> [(&'static str, f64, Option<f64>); 3] {
        [
            ("step1", self.step1, None),
            ("step2", self.step2_wall, self.step2_accelerated),
            ("step3", self.step3, self.step3_accelerated),
        ]
    }

    /// Percentage breakdown `(step1, step2, step3)` — the paper's
    /// Table 1 (software) and Table 7 (RASC) rows.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.step1 / t * 100.0,
            self.step2() / t * 100.0,
            self.step3() / t * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_percentages_software() {
        let p = StepProfile {
            step1: 1.0,
            step2_wall: 97.0,
            step3: 2.0,
            ..StepProfile::default()
        };
        assert!((p.total() - 100.0).abs() < 1e-12);
        let (a, b, c) = p.percentages();
        assert!((a - 1.0).abs() < 1e-9);
        assert!((b - 97.0).abs() < 1e-9);
        assert!((c - 2.0).abs() < 1e-9);
    }

    #[test]
    fn accelerated_replaces_wall_in_total() {
        let p = StepProfile {
            step1: 1.0,
            step2_wall: 50.0, // simulation cost, ignored
            step2_accelerated: Some(0.5),
            step3: 2.0,
            ..StepProfile::default()
        };
        assert!((p.total() - 3.5).abs() < 1e-12);
        assert!((p.step2() - 0.5).abs() < 1e-12);
        // With an accelerated step 3 too, total uses both accelerated
        // figures and the concurrent deployment takes the max.
        let p = StepProfile {
            step3_accelerated: Some(0.2),
            ..p
        };
        assert!((p.total() - 1.7).abs() < 1e-12);
        assert!((p.total_concurrent() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_zero() {
        let p = StepProfile::default();
        assert_eq!(p.total(), 0.0);
        assert_eq!(p.percentages(), (0.0, 0.0, 0.0));
    }
}
