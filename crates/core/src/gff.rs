//! GFF3 output for genome-search results.
//!
//! The paper's motivating workflow is genome annotation; annotation
//! pipelines consume protein-to-genome matches as GFF3 `protein_match`
//! features. This module renders [`crate::GenomeMatch`]es accordingly
//! (1-based inclusive coordinates, `.` for unscored columns, attributes
//! carrying the alignment details).

use std::fmt::Write as _;

use crate::genome::GenomeMatch;

/// Render matches as a GFF3 document.
///
/// `seqid` is the genome's column-1 identifier; `source` labels column 2
/// (e.g. "psc-rasc"). Matches keep their input order; callers sort by
/// E-value or position beforehand if they care.
pub fn to_gff3(seqid: &str, source: &str, matches: &[GenomeMatch]) -> String {
    let mut out = String::from("##gff-version 3\n");
    for (i, m) in matches.iter().enumerate() {
        // GFF3 is 1-based, end-inclusive.
        let start = m.genome_start + 1;
        let end = m.genome_end;
        let strand = if m.forward { '+' } else { '-' };
        // Phase of a protein_match is the frame offset within the codon.
        let phase = match m.frame {
            psc_seqio::Frame::Plus(k) | psc_seqio::Frame::Minus(k) => k,
        };
        let mut attrs = String::new();
        let _ = write!(
            attrs,
            "ID=match{i:05};Name={};Target={} {} {};frame={:+};bit_score={:.1};evalue={:.3e}",
            m.protein_id,
            m.protein_id,
            m.protein_start + 1,
            m.protein_end,
            m.frame.number(),
            m.bit_score,
            m.evalue
        );
        let _ = writeln!(
            out,
            "{seqid}\t{source}\tprotein_match\t{start}\t{end}\t{:.1}\t{strand}\t{phase}\t{attrs}",
            m.bit_score
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_seqio::Frame;

    fn sample_match(forward: bool) -> GenomeMatch {
        GenomeMatch {
            protein_idx: 3,
            protein_id: "protX".into(),
            frame: if forward {
                Frame::Plus(1)
            } else {
                Frame::Minus(0)
            },
            genome_start: 99,
            genome_end: 399,
            forward,
            protein_start: 0,
            protein_end: 100,
            score: 250,
            bit_score: 101.5,
            evalue: 3.2e-25,
        }
    }

    #[test]
    fn renders_valid_gff3_lines() {
        let text = to_gff3("chr_synth", "psc-rasc", &[sample_match(true)]);
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("##gff-version 3"));
        let line = lines.next().unwrap();
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols.len(), 9, "{line}");
        assert_eq!(cols[0], "chr_synth");
        assert_eq!(cols[1], "psc-rasc");
        assert_eq!(cols[2], "protein_match");
        assert_eq!(cols[3], "100"); // 1-based start
        assert_eq!(cols[4], "399"); // inclusive end
        assert_eq!(cols[6], "+");
        assert_eq!(cols[7], "1"); // frame +2 ⇒ phase 1
        assert!(cols[8].contains("Name=protX"));
        assert!(cols[8].contains("Target=protX 1 100"));
        assert!(cols[8].contains("evalue=3.200e-25"));
    }

    #[test]
    fn reverse_strand_marked() {
        let text = to_gff3("g", "psc", &[sample_match(false)]);
        let line = text.lines().nth(1).unwrap();
        let cols: Vec<&str> = line.split('\t').collect();
        assert_eq!(cols[6], "-");
        assert!(cols[8].contains("frame=-1"));
    }

    #[test]
    fn ids_are_unique_per_match() {
        let text = to_gff3("g", "psc", &[sample_match(true), sample_match(true)]);
        assert!(text.contains("ID=match00000"));
        assert!(text.contains("ID=match00001"));
    }

    #[test]
    fn empty_input_is_header_only() {
        assert_eq!(to_gff3("g", "s", &[]), "##gff-version 3\n");
    }
}
