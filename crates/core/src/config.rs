//! Pipeline configuration.

use psc_align::{GapConfig, Kernel, KernelChoice};
use psc_index::seed::{subset_seed_default, ExactSeed, SeedModel, SubsetSeed};
use psc_rasc::{BoardConfig, OperatorConfig};

/// Which seed model step 1 indexes with.
#[derive(Clone, Debug, Default)]
pub enum SeedChoice {
    /// The paper's subset seed of span 4 (default).
    #[default]
    SubsetDefault,
    /// Exact W-mer (ablation baseline).
    Exact(usize),
    /// A caller-supplied subset seed.
    Custom(SubsetSeed),
}

impl SeedChoice {
    /// Materialize the seed model.
    pub fn model(&self) -> Box<dyn SeedModel> {
        match self {
            SeedChoice::SubsetDefault => Box::new(subset_seed_default()),
            SeedChoice::Exact(w) => Box::new(ExactSeed::new(*w)),
            SeedChoice::Custom(s) => Box::new(s.clone()),
        }
    }
}

/// Where step 2 (ungapped extension) runs.
#[derive(Clone, Debug, Default)]
pub enum Step2Backend {
    /// Single-threaded software (the paper's "Sequential" columns).
    #[default]
    SoftwareScalar,
    /// Multithreaded software over seed keys.
    SoftwareParallel { threads: usize },
    /// The simulated RASC-100 board. `host_threads` only speeds up the
    /// simulation; reported hardware time is deterministic.
    Rasc {
        pe_count: usize,
        fpga_count: usize,
        host_threads: usize,
    },
    /// CPU cores and one simulated FPGA working concurrently — the
    /// dispatch question the paper's conclusion raises for multi-core
    /// hosts. Seed keys carrying `fpga_share` of the pair mass go to the
    /// board; the rest run on `cpu_threads` software workers. Reported
    /// step-2 time is `max(fpga, cpu)` (they overlap).
    Hybrid {
        pe_count: usize,
        cpu_threads: usize,
        /// Fraction of the pair mass dispatched to the FPGA (0..=1).
        fpga_share: f64,
    },
}

impl Step2Backend {
    /// Stable name for run reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Step2Backend::SoftwareScalar => "software-scalar",
            Step2Backend::SoftwareParallel { .. } => "software-parallel",
            Step2Backend::Rasc { .. } => "rasc",
            Step2Backend::Hybrid { .. } => "hybrid",
        }
    }
}

/// Where step 3 (gapped extension) runs.
#[derive(Clone, Debug, Default)]
pub enum Step3Backend {
    /// Host-side X-drop DP (the paper's deployment).
    #[default]
    Software,
    /// The simulated systolic gapped-extension operator the paper's
    /// conclusion proposes for the second FPGA (see
    /// `psc_rasc::gapped_op`). Results are identical to software;
    /// the profile additionally reports the simulated hardware time.
    RascGapped { band: usize },
}

impl Step3Backend {
    /// Stable name for run reports and logs.
    pub fn name(&self) -> &'static str {
        match self {
            Step3Backend::Software => "software",
            Step3Backend::RascGapped { .. } => "rasc-gapped",
        }
    }
}

/// Full pipeline configuration.
#[derive(Clone, Debug)]
pub struct PipelineConfig {
    /// Seed model (step 1).
    pub seed: SeedChoice,
    /// Context residues on each side of the seed; window length is
    /// `seed.span() + 2 * n_ctx` (the shift-register size of one PE).
    pub n_ctx: usize,
    /// Raw windowed score a pair needs to survive step 2.
    pub threshold: i32,
    /// Ungapped kernel variant.
    pub kernel: Kernel,
    /// Kernel implementation for the software step-2 backends
    /// (scalar / profile / simd; auto-detected by default). Ignored by
    /// the RASC backend, which has its own datapath.
    pub step2_kernel: KernelChoice,
    /// Work-distribution schedule for the software step-2 backends:
    /// contiguous key-range chunks (the historical walk) or
    /// mass-bucketed work items pulled off an atomic counter
    /// (the default; balances heavy-tailed key masses). Candidates are
    /// bit-identical either way.
    pub step2_schedule: crate::step2::Step2Schedule,
    /// Step-2 backend.
    pub backend: Step2Backend,
    /// Step-3 backend.
    pub step3_backend: Step3Backend,
    /// Gapped extension parameters (step 3).
    pub gap: GapConfig,
    /// Report alignments with E-value at most this (paper: 1e-3).
    pub max_evalue: f64,
    /// Threads for index construction (step 1).
    pub index_threads: usize,
    /// Workers for step-3 gapped extension. Anchors are cut into
    /// fixed-size shards and merged by shard index, so HSP output,
    /// counters, and telemetry are bit-identical at any thread count.
    pub step3_threads: usize,
    /// Streamed execution: step-2 candidates flow through a bounded
    /// channel into the anchor builder as each board entry / software
    /// chunk completes, instead of waiting on the step-2 barrier.
    /// Output is bit-identical to the barrier run (the anchor dedup is
    /// order-invariant); only wall clock changes.
    pub overlap: bool,
    /// Minimum subject-position separation between gapped-extension
    /// anchors on one (seq0, seq1, diagonal) line; candidates closer than
    /// this to the previous anchor are folded into it.
    pub min_anchor_sep: u32,
    /// Result FIFO capacity of the simulated operator.
    pub fifo_capacity: usize,
    /// PEs per slot in the simulated operator (register-barrier groups).
    pub slot_size: usize,
    /// Soft low-complexity masking: when set, both banks are entropy
    /// masked for *seeding and step 2 only* (step-3 extensions see the
    /// original residues), mirroring BLAST's soft-masking default.
    pub mask: Option<psc_seqio::MaskConfig>,
    /// Override the board's DMA/transfer model (bandwidth, dispatch
    /// latency, bitstream-load time). `None` keeps the physical
    /// RASC-100 defaults; scaled-down experiments scale the one-time
    /// setup cost along with the workload (see psc-bench).
    pub dma_override: Option<psc_rasc::DmaModel>,
    /// Deterministic fault plan for the RASC/Hybrid backends; `None`
    /// (the default) runs fault-free. Candidates are bit-identical
    /// either way — recovery restores every faulted entry.
    pub fault_plan: Option<psc_rasc::FaultPlan>,
    /// Retry / degradation policy the board applies when a dispatch
    /// faults.
    pub recovery: psc_rasc::RecoveryPolicy,
    /// Fleet shape for the RASC backend: number of simulated boards,
    /// steal policy, and quarantine threshold. `boards == 1` (the
    /// default) keeps the classic single-board path; `boards >= 2`
    /// routes step 2 through the work-stealing fleet dispatcher.
    /// HSP output is bit-identical at any board count.
    pub fleet: psc_rasc::FleetConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            seed: SeedChoice::SubsetDefault,
            n_ctx: 28,
            threshold: 45,
            kernel: Kernel::ClampedSum,
            step2_kernel: KernelChoice::Auto,
            step2_schedule: crate::step2::Step2Schedule::default(),
            backend: Step2Backend::SoftwareScalar,
            step3_backend: Step3Backend::default(),
            gap: GapConfig::default(),
            max_evalue: 1e-3,
            index_threads: 1,
            step3_threads: 1,
            overlap: false,
            min_anchor_sep: 60,
            fifo_capacity: 512,
            slot_size: 16,
            mask: None,
            dma_override: None,
            fault_plan: None,
            recovery: psc_rasc::RecoveryPolicy::default(),
            fleet: psc_rasc::FleetConfig::default(),
        }
    }
}

impl PipelineConfig {
    /// Window length `W + 2N` under the configured seed model.
    pub fn window_len(&self) -> usize {
        self.seed.model().span() + 2 * self.n_ctx
    }

    /// Operator configuration the RASC backend instantiates.
    pub fn operator_config(&self, pe_count: usize) -> OperatorConfig {
        let mut op = OperatorConfig::new(pe_count);
        op.window_len = self.window_len();
        op.threshold = self.threshold;
        op.kernel = self.kernel;
        op.fifo_capacity = self.fifo_capacity;
        op.slot_size = self.slot_size;
        op
    }

    /// Board configuration for the RASC backend.
    pub fn board_config(&self, pe_count: usize, fpga_count: usize) -> BoardConfig {
        let mut cfg = BoardConfig::new(self.operator_config(pe_count), fpga_count);
        if let Some(dma) = self.dma_override {
            cfg.dma = dma;
        }
        cfg.fault_plan = self.fault_plan.clone();
        cfg.recovery = self.recovery;
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_window_is_sixty() {
        let c = PipelineConfig::default();
        assert_eq!(c.window_len(), 4 + 2 * 28);
    }

    #[test]
    fn seed_choices_materialize() {
        assert_eq!(SeedChoice::SubsetDefault.model().span(), 4);
        assert_eq!(SeedChoice::Exact(3).model().span(), 3);
        assert_eq!(SeedChoice::Exact(3).model().key_count(), 8000);
        let custom = SeedChoice::Custom(subset_seed_default());
        assert_eq!(custom.model().key_count(), 22500);
    }

    #[test]
    fn operator_config_inherits_pipeline_settings() {
        let c = PipelineConfig {
            threshold: 31,
            n_ctx: 10,
            ..PipelineConfig::default()
        };
        let op = c.operator_config(128);
        assert_eq!(op.pe_count, 128);
        assert_eq!(op.threshold, 31);
        assert_eq!(op.window_len, 24);
        let b = c.board_config(64, 2);
        assert_eq!(b.fpga_count, 2);
        assert_eq!(b.operator.pe_count, 64);
    }

    #[test]
    fn board_config_carries_fault_plan_and_recovery() {
        let c = PipelineConfig {
            fault_plan: Some(psc_rasc::FaultPlan::seeded(9)),
            recovery: psc_rasc::RecoveryPolicy {
                max_retries: 7,
                ..psc_rasc::RecoveryPolicy::default()
            },
            ..PipelineConfig::default()
        };
        let b = c.board_config(64, 1);
        assert_eq!(b.fault_plan, Some(psc_rasc::FaultPlan::seeded(9)));
        assert_eq!(b.recovery.max_retries, 7);
        // The default stays fault-free.
        assert!(PipelineConfig::default()
            .board_config(64, 1)
            .fault_plan
            .is_none());
    }
}
