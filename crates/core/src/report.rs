//! Assemble a [`RunReport`] from a pipeline run.
//!
//! `psc-telemetry` stays dependency-free, so the glue that knows about
//! [`PipelineOutput`], [`PipelineConfig`] and the board report lives
//! here: step timings come from the profile, generic counters/spans/
//! histograms from the recorder snapshot, and the per-FPGA section from
//! the RASC board report (with utilization precomputed through the
//! shared [`psc_rasc::pe_utilization`] helper).

use psc_telemetry::{
    BoardTelemetry, DetectorTelemetry, FaultTelemetry, FpgaTelemetry, RecoveryTelemetry, RunReport,
    Snapshot, StepReport,
};

use crate::config::{PipelineConfig, Step2Backend};
use crate::pipeline::PipelineOutput;

/// PEs per FPGA the configured step-2 backend instantiates (0 for the
/// pure-software backends).
fn configured_pe_count(config: &PipelineConfig) -> u64 {
    match config.backend {
        Step2Backend::Rasc { pe_count, .. } | Step2Backend::Hybrid { pe_count, .. } => {
            pe_count as u64
        }
        _ => 0,
    }
}

/// Build the schema-versioned report for one pipeline run.
pub fn build_run_report(
    output: &PipelineOutput,
    config: &PipelineConfig,
    snapshot: &Snapshot,
) -> RunReport {
    let mut report = RunReport::new();
    report.steps = output
        .profile
        .rows()
        .iter()
        .map(|&(name, wall_seconds, accelerated_seconds)| StepReport {
            name: name.to_string(),
            wall_seconds,
            accelerated_seconds,
        })
        .collect();
    report.absorb_snapshot(snapshot);

    if let Some(board) = &output.board {
        let pe_count = configured_pe_count(config);
        let fpga = board
            .fpga_cycles
            .iter()
            .enumerate()
            .map(|(f, &cycles)| FpgaTelemetry {
                cycles,
                stall_cycles: board.stall_cycles[f],
                busy_pe_cycles: board.busy_pe_cycles[f],
                fifo_peak: board.fifo_peak[f],
                utilization: psc_rasc::pe_utilization(
                    board.busy_pe_cycles[f],
                    cycles,
                    pe_count as usize,
                ),
            })
            .collect();
        report.board = Some(BoardTelemetry {
            pe_count,
            fpga,
            bytes_in: board.bytes_in,
            bytes_out: board.bytes_out,
            wire_in_seconds: board.wire_in_seconds,
            wire_out_seconds: board.wire_out_seconds,
            sync_seconds: board.sync_seconds,
            setup_seconds: board.setup_seconds,
            accelerated_seconds: board.accelerated_seconds,
            overlap_seconds: board.overlap_seconds,
            overlap_occupancy: board.overlap_occupancy,
            entries: board.entries,
            hit_count: board.hit_count,
            faults: FaultTelemetry {
                injected: board.faults.faults_injected,
                detected: board.faults.faults_detected,
                detectors: DetectorTelemetry {
                    checksum: board.faults.checksum_mismatches,
                    watchdog: board.faults.watchdog_trips,
                    protocol: board.faults.protocol_faults,
                },
                recovery: RecoveryTelemetry {
                    retries: board.faults.retries,
                    entries_degraded: board.faults.entries_degraded,
                    backoff_cycles: board.faults.backoff_cycles,
                },
            },
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Pipeline;
    use psc_score::blosum62;
    use psc_seqio::{Bank, Seq};
    use psc_telemetry::MemRecorder;

    fn banks() -> (Bank, Bank) {
        let seqs: Vec<Vec<u8>> = (0..8)
            .map(|i| {
                (0..140u32)
                    .map(|j| (((i * 13 + j * 11) % 89) % 20) as u8)
                    .collect()
            })
            .collect();
        let bank: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("s{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        (bank.clone(), bank)
    }

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            n_ctx: 8,
            threshold: 22,
            max_evalue: 10.0,
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn software_run_builds_full_report() {
        let (b0, b1) = banks();
        let cfg = small_config();
        let rec = MemRecorder::new();
        let out = Pipeline::new(cfg.clone()).run_recorded(&b0, &b1, blosum62(), &rec);
        let report = build_run_report(&out, &cfg, &rec.snapshot());

        assert_eq!(report.steps.len(), 3);
        assert!(report.board.is_none());
        assert_eq!(report.counter("step2.pairs"), Some(out.stats.step2.pairs));
        assert_eq!(
            report.counter("step2.candidates_kept"),
            Some(out.stats.step2.candidates)
        );
        assert_eq!(report.counter("step3.anchors"), Some(out.stats.anchors));
        assert_eq!(report.meta_value("backend"), Some("software-scalar"));
        let h = report.histogram("step2.pairs_per_key").expect("histogram");
        assert_eq!(h.count, out.stats.step2.active_keys);
        assert_eq!(h.sum, out.stats.step2.pairs);
        // Round-trips through JSON.
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn rasc_run_reports_per_fpga_details() {
        let (b0, b1) = banks();
        let cfg = PipelineConfig {
            backend: Step2Backend::Rasc {
                pe_count: 64,
                fpga_count: 2,
                host_threads: 1,
            },
            ..small_config()
        };
        let rec = MemRecorder::new();
        let out = Pipeline::new(cfg.clone()).run_recorded(&b0, &b1, blosum62(), &rec);
        let report = build_run_report(&out, &cfg, &rec.snapshot());

        let board = report.board.as_ref().expect("board section");
        assert_eq!(board.pe_count, 64);
        assert_eq!(board.fpga.len(), 2);
        assert!(board.fpga[0].cycles > 0);
        assert!(board.fpga[0].utilization > 0.0);
        assert!(board.bytes_in > 0);
        assert!(board.wire_in_seconds > 0.0);
        assert!(board.overlap_seconds > 0.0);
        assert!(board.overlap_occupancy > 0.0 && board.overlap_occupancy <= 1.0);
        assert_eq!(report.meta_value("backend"), Some("rasc"));
        assert_eq!(
            report.step("step2").unwrap().accelerated_seconds,
            Some(board.accelerated_seconds)
        );
        let back = RunReport::parse(&report.to_json_string()).unwrap();
        assert_eq!(report, back);
    }
}
