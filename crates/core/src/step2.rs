//! Step 2 — all-pairs ungapped extension over matching index lists.
//!
//! This is the paper's critical section (97 % of sequential runtime,
//! Table 1). The software implementations here are the "Sequential"
//! baseline of Table 4 and the host-side reference the RASC backend is
//! verified against; they were deliberately written the way the paper
//! describes ("primarily designed to have an optimal efficiency on a
//! parallel support"): gather the fixed-length windows per key, then a
//! dense rectangular pair loop — exactly the data flow the PE array
//! consumes.
//!
//! Interchangeable kernel backends score that rectangle (selected by
//! [`psc_align::KernelChoice`], auto-detected by default): the original
//! per-pair `scalar` kernel, a score-`profile` kernel that builds one
//! substitution table per `IL0` window, and the batched lane kernels
//! (`simd`, `wide`, `split`) that transpose one side and score
//! [`psc_align::LANES`] or [`psc_align::WIDE_LANES`] window pairs per
//! step through cache-sized tiles. All emit bit-identical candidates in
//! identical order.
//!
//! Multi-threaded runs distribute keys under a [`Step2Schedule`]:
//! `contiguous` cuts the key range into one balanced chunk per worker,
//! while the default `bucketed` schedule builds mass-bucketed work
//! items (heavy keys alone, light keys coalesced), executes them
//! heaviest-first off an atomic pull counter, and routes each rectangle
//! so the lane axis is the larger index list (transposing the
//! orientation when `|IL1| < |IL0|`, falling back to the profile kernel
//! when both sides are shorter than a lane block). Both schedules merge
//! per-item results back into key order, so candidates, stats and
//! report JSON are byte-identical at any thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

use crossbeam::{channel, thread};
use psc_align::{
    profile_score, profile_score2, score_lanes, score_lanes_split, score_lanes_wide,
    ungapped_score, InterleavedWindows, Kernel, KernelBackend, KernelChoice, ScoreProfile, LANES,
    WIDE_LANES,
};
use psc_index::{FlatBank, SeedIndex};
use psc_score::SubstitutionMatrix;
use psc_seqio::alphabet::AA_ALPHABET_LEN;

/// A pair that survived step 2: global seed positions in each bank and
/// the windowed score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub pos0: u32,
    pub pos1: u32,
    pub score: i32,
}

/// Instrumentation counters for step 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Step2Stats {
    /// Window pairs scored (`Σ_k |IL0_k|·|IL1_k|`).
    pub pairs: u64,
    /// Pairs at or above the threshold.
    pub candidates: u64,
    /// Keys with work on both sides.
    pub active_keys: u64,
}

/// Wall timing of one step-2 work unit — a bucketed [`WorkItem`] or a
/// contiguous chunk — collected by the `_timed` drivers for the flight
/// recorder. Kernel modules stay off the telemetry surface, so these
/// are plain numbers relative to a caller-owned epoch; the pipeline
/// turns them into trace spans after the stage completes. All offsets
/// come from `epoch.elapsed()` on the instant the caller passes in —
/// this module never reads the clock on its own.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ItemTiming {
    /// Work-item index (bucketed schedule) or chunk ordinal
    /// (contiguous), both in key-major order.
    pub item: usize,
    /// Worker that ran the unit, in spawn order.
    pub worker: u32,
    /// Seconds from the epoch to the unit's kernel start.
    pub start_seconds: f64,
    /// Kernel time of the unit (gather + rectangle scoring).
    pub kernel_seconds: f64,
    /// Seconds spent blocked shipping the unit's batch into the
    /// overlap channel (streaming drivers only; 0 for barrier runs and
    /// for empty batches that are never sent).
    pub send_seconds: f64,
    /// Seed pairs the unit scored.
    pub pairs: u64,
    /// Candidates the unit produced.
    pub candidates: u64,
}

/// Gather the extension windows for every position of an index list into
/// one contiguous buffer (the byte stream an input controller would DMA).
pub fn gather_windows(flat: &FlatBank, list: &[u32], span: usize, n_ctx: usize, out: &mut Vec<u8>) {
    let l = span + 2 * n_ctx;
    out.clear();
    out.resize(list.len() * l, 0);
    for (i, &pos) in list.iter().enumerate() {
        flat.window_into(pos, span, n_ctx, &mut out[i * l..(i + 1) * l]);
    }
}

/// How step 2 distributes key work across workers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum Step2Schedule {
    /// Cut the key range into one contiguous, mass-balanced chunk per
    /// worker (the original scheme).
    Contiguous,
    /// Mass-bucketed work items pulled off an atomic counter, heaviest
    /// first, with light keys coalesced and each rectangle oriented so
    /// the lane axis is the larger list.
    #[default]
    Bucketed,
}

impl Step2Schedule {
    /// Parse a CLI-style name.
    pub fn parse(s: &str) -> Option<Step2Schedule> {
        Some(match s {
            "contiguous" => Step2Schedule::Contiguous,
            "bucketed" => Step2Schedule::Bucketed,
            _ => return None,
        })
    }

    /// Short stable name, for stats and profile output.
    pub fn name(self) -> &'static str {
        match self {
            Step2Schedule::Contiguous => "contiguous",
            Step2Schedule::Bucketed => "bucketed",
        }
    }
}

/// Scoring parameters threaded through the software backends.
#[derive(Clone, Copy, Debug)]
pub struct Step2Params<'m> {
    pub matrix: &'m SubstitutionMatrix,
    pub kernel: Kernel,
    pub span: usize,
    pub n_ctx: usize,
    pub threshold: i32,
    /// Which kernel implementation scores the pair rectangle
    /// (auto-detected by default; see [`Step2Params::resolved_backend`]).
    pub kernel_backend: KernelChoice,
    /// How keys are distributed across workers (output-invariant; see
    /// [`Step2Schedule`]).
    pub schedule: Step2Schedule,
}

impl Step2Params<'_> {
    /// Window length `W + 2N` of one extension window.
    #[inline]
    pub fn window_len(&self) -> usize {
        self.span + 2 * self.n_ctx
    }

    /// The concrete kernel backend this run will use.
    pub fn resolved_backend(&self) -> KernelBackend {
        self.kernel_backend.resolve(self.window_len(), self.matrix)
    }
}

/// `IL0` rows whose profiles are built together (one i-tile).
const TILE_I: usize = 32;

/// Target bytes of interleaved `IL1` stream per j-tile — sized so a
/// tile stays cache-resident while every profile of the i-tile streams
/// over it.
const TILE_J_BYTES: usize = 32 << 10;

/// j-tile width (in windows) for a given window length and kernel lane
/// width — the one formula both the hot loop and the analytic tile
/// count derive from.
fn tile_j_for(window_len: usize, lane_width: usize) -> usize {
    (TILE_J_BYTES / window_len.max(1)).clamp(lane_width, 1 << 14) / lane_width * lane_width
}

/// j-tile width for the 16-lane kernel (kept for the existing tests
/// and telemetry call sites).
#[cfg(test)]
fn simd_tile_j(window_len: usize) -> usize {
    tile_j_for(window_len, LANES)
}

/// The exact `(i, j)` tile sequence [`lanes_rectangle`] walks for one
/// key's `n0 × n1` pair rectangle — i-tiles outer, j-tiles inner. The
/// hot loop iterates this directly, and tests pin [`tile_count`]'s
/// closed form to `tile_walk(..).count()`, so the telemetry number
/// cannot drift from the real walk.
#[doc(hidden)]
pub fn tile_walk(
    n0: usize,
    n1: usize,
    window_len: usize,
    lane_width: usize,
) -> impl Iterator<Item = (std::ops::Range<usize>, std::ops::Range<usize>)> {
    let tile_j = tile_j_for(window_len, lane_width);
    (0..n0).step_by(TILE_I).flat_map(move |i0| {
        let i_end = (i0 + TILE_I).min(n0);
        (0..n1)
            .step_by(tile_j)
            .map(move |j0| (i0..i_end, j0..(j0 + tile_j).min(n1)))
    })
}

/// [`tile_walk`] for the 16-lane kernel.
#[doc(hidden)]
pub fn simd_tile_walk(
    n0: usize,
    n1: usize,
    window_len: usize,
) -> impl Iterator<Item = (std::ops::Range<usize>, std::ops::Range<usize>)> {
    tile_walk(n0, n1, window_len, LANES)
}

/// Number of cache tiles a lane kernel of `lane_width` walks for one
/// key's `n0 × n1` pair rectangle — the telemetry counterpart of
/// [`tile_walk`], computed analytically so instrumentation never
/// touches the hot loop.
pub fn tile_count(n0: usize, n1: usize, window_len: usize, lane_width: usize) -> u64 {
    if n0 == 0 || n1 == 0 {
        return 0;
    }
    n0.div_ceil(TILE_I) as u64 * n1.div_ceil(tile_j_for(window_len, lane_width)) as u64
}

/// [`tile_count`] for the 16-lane kernel.
pub fn simd_tile_count(n0: usize, n1: usize, window_len: usize) -> u64 {
    tile_count(n0, n1, window_len, LANES)
}

/// Cache tiles the resolved lane kernel walks for one key's `n0 × n1`
/// rectangle under `schedule` — 0 for scalar-width backends and for
/// rectangles [`lane_orientation`] routes to the profile path. Consults
/// the same orientation the hot loop does, so the telemetry count
/// cannot drift from the real walk.
pub fn rectangle_tile_count(
    n0: usize,
    n1: usize,
    window_len: usize,
    backend: KernelBackend,
    schedule: Step2Schedule,
) -> u64 {
    let width = backend.lane_width();
    if width == 1 {
        return 0;
    }
    match lane_orientation(n0, n1, schedule) {
        None => 0,
        Some(false) => tile_count(n0, n1, window_len, width),
        Some(true) => tile_count(n1, n0, window_len, width),
    }
}

/// Log2 mass bucket of a pair mass, using the same convention as the
/// telemetry histograms: bucket 0 holds mass 0, bucket `b >= 1` holds
/// `[2^(b-1), 2^b)`.
#[inline]
pub fn bucket_of_mass(mass: u64) -> u32 {
    if mass == 0 {
        0
    } else {
        64 - mass.leading_zeros()
    }
}

/// One schedulable unit of bucketed step-2 work: a contiguous run of
/// keys with its total pair mass.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkItem {
    /// Keys this item covers (consecutive; empty keys ride along).
    pub keys: std::ops::Range<u32>,
    /// Total `|IL0|·|IL1|` pair mass over `keys`.
    pub mass: u64,
    /// Log2 mass bucket ([`bucket_of_mass`]).
    pub bucket: u32,
}

impl WorkItem {
    fn new(keys: std::ops::Range<u32>, mass: u64) -> WorkItem {
        WorkItem {
            keys,
            mass,
            bucket: bucket_of_mass(mass),
        }
    }
}

/// Pair mass at which a key is heavy enough to be its own work item;
/// lighter consecutive keys coalesce until their run accumulates this
/// much, so the atomic pull is never contended by near-empty grabs.
const ITEM_MASS: u64 = 4096;

/// Partition `keys` into bucketed-scheduler work items, in key order.
///
/// Every key of the range lands in exactly one item (the scheduler
/// property tests pin the partition): keys of mass >= `ITEM_MASS` get a
/// dedicated item, and runs of lighter keys (including empty ones)
/// coalesce into shared items of roughly `ITEM_MASS` pairs.
pub fn bucketed_items(
    idx0: &SeedIndex,
    idx1: &SeedIndex,
    keys: std::ops::Range<u32>,
) -> Vec<WorkItem> {
    let mut items = Vec::new();
    let mut run_start = keys.start;
    let mut run_mass = 0u64;
    for k in keys.clone() {
        let mass = idx0.list(k).len() as u64 * idx1.list(k).len() as u64;
        if mass >= ITEM_MASS {
            if k > run_start {
                items.push(WorkItem::new(run_start..k, run_mass));
            }
            items.push(WorkItem::new(k..k + 1, mass));
            run_start = k + 1;
            run_mass = 0;
        } else {
            run_mass += mass;
            if run_mass >= ITEM_MASS {
                items.push(WorkItem::new(run_start..k + 1, run_mass));
                run_start = k + 1;
                run_mass = 0;
            }
        }
    }
    if run_start < keys.end {
        items.push(WorkItem::new(run_start..keys.end, run_mass));
    }
    items
}

/// Execution order over `items` for the atomic pull: heaviest mass
/// first (longest-processing-time heuristic), ties broken by key order
/// so the order — unlike the completion order — is deterministic.
pub fn lpt_order(items: &[WorkItem]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..items.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(items[i].mass), items[i].keys.start));
    order
}

/// How a lane kernel covers one `n0 × n1` rectangle under `schedule`:
/// `None` routes it to the scalar profile kernel (both sides shorter
/// than a lane block, so lanes would mostly idle), `Some(transposed)`
/// keeps it on the lane path with the lane axis on `IL1` (`false`) or
/// transposed onto the larger `IL0` (`true`).
///
/// This is the single routing decision both the hot loop and the
/// analytic lane-occupancy accounting consult, so the recorded
/// `step2.lane_fill` numbers cannot drift from the real walk.
pub fn lane_orientation(n0: usize, n1: usize, schedule: Step2Schedule) -> Option<bool> {
    match schedule {
        Step2Schedule::Contiguous => Some(false),
        Step2Schedule::Bucketed if n0.max(n1) < LANES => None,
        Step2Schedule::Bucketed => Some(n1 < n0),
    }
}

/// Lane-slot accounting for one key's `n0 × n1` rectangle: `(useful,
/// total)` lane slots the resolved backend consumes under `schedule`.
///
/// Pure arithmetic mirroring [`lane_orientation`] — the pipeline
/// derives the `step2.lane_fill` histogram and per-bucket occupancy
/// counters from this after the run, never inside the kernel loop.
pub fn rectangle_lane_slots(
    n0: usize,
    n1: usize,
    backend: KernelBackend,
    schedule: Step2Schedule,
) -> (u64, u64) {
    let useful = n0 as u64 * n1 as u64;
    if useful == 0 {
        return (0, 0);
    }
    let width = backend.lane_width();
    if width == 1 {
        return (useful, useful);
    }
    let (rows, cols) = match lane_orientation(n0, n1, schedule) {
        None => return (useful, useful),
        Some(false) => (n0, n1),
        Some(true) => (n1, n0),
    };
    let total = rows as u64 * cols.div_ceil(width) as u64 * width as u64;
    (useful, total)
}

/// The transposed substitution lookup used when a rectangle runs in
/// transposed orientation: `t[b][a] = m[a][b]`, so scoring `IL1`
/// profiles against streamed `IL0` windows adds exactly the same
/// substitution score per recurrence step as the normal orientation —
/// candidates stay bit-identical even for asymmetric matrices.
fn transposed_matrix(m: &SubstitutionMatrix) -> SubstitutionMatrix {
    let flat = m.flat();
    let mut t = [0i8; AA_ALPHABET_LEN * AA_ALPHABET_LEN];
    for a in 0..AA_ALPHABET_LEN {
        for b in 0..AA_ALPHABET_LEN {
            t[b * AA_ALPHABET_LEN + a] = flat[a * AA_ALPHABET_LEN + b];
        }
    }
    SubstitutionMatrix::from_flat(format!("{}-transposed", m.name), t)
}

/// Reusable scratch buffers for one worker's key range, so the per-key
/// loop allocates nothing in steady state.
#[derive(Default)]
struct KeyScratch {
    w0: Vec<u8>,
    w1: Vec<u8>,
    il1: InterleavedWindows,
    profiles: Vec<ScoreProfile>,
    /// `(i, j, score)` hits of the current key, tile order.
    hits: Vec<(u32, u32, i32)>,
}

/// Run step 2 on one key range, appending candidates (key-major order).
///
/// `scratch` is reused across calls so the bucketed scheduler's
/// per-item invocations allocate nothing in steady state; `tmat` is the
/// run's [`transposed_matrix`], consulted only when a rectangle runs in
/// transposed orientation.
#[allow(clippy::too_many_arguments)]
fn run_key_range(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    backend: KernelBackend,
    tmat: &SubstitutionMatrix,
    keys: std::ops::Range<u32>,
    scratch: &mut KeyScratch,
    out: &mut Vec<Candidate>,
    stats: &mut Step2Stats,
) {
    for key in keys {
        let list0 = idx0.list(key);
        let list1 = idx1.list(key);
        if list0.is_empty() || list1.is_empty() {
            continue;
        }
        stats.active_keys += 1;
        stats.pairs += list0.len() as u64 * list1.len() as u64;
        gather_windows(flat0, list0, params.span, params.n_ctx, &mut scratch.w0);
        gather_windows(flat1, list1, params.span, params.n_ctx, &mut scratch.w1);
        match backend {
            KernelBackend::Scalar => {
                scalar_rectangle(params, list0, list1, &scratch.w0, &scratch.w1, out)
            }
            KernelBackend::Profile => profile_rectangle(params, list0, list1, scratch, out),
            KernelBackend::Simd | KernelBackend::Wide | KernelBackend::Split => {
                match lane_orientation(list0.len(), list1.len(), params.schedule) {
                    None => profile_rectangle(params, list0, list1, scratch, out),
                    Some(false) => lanes_rectangle(
                        params,
                        backend,
                        params.matrix,
                        false,
                        list0,
                        list1,
                        scratch,
                        out,
                    ),
                    Some(true) => {
                        lanes_rectangle(params, backend, tmat, true, list0, list1, scratch, out)
                    }
                }
            }
        }
    }
}

/// The original per-pair loop (the paper's sequential kernel).
fn scalar_rectangle(
    params: &Step2Params<'_>,
    list0: &[u32],
    list1: &[u32],
    w0: &[u8],
    w1: &[u8],
    out: &mut Vec<Candidate>,
) {
    let l = params.window_len();
    for (i, &pos0) in list0.iter().enumerate() {
        let win0 = &w0[i * l..(i + 1) * l];
        for (j, &pos1) in list1.iter().enumerate() {
            let win1 = &w1[j * l..(j + 1) * l];
            let score = ungapped_score(params.kernel, params.matrix, win0, win1);
            if score >= params.threshold {
                out.push(Candidate { pos0, pos1, score });
            }
        }
    }
}

/// Score-profile loop: one profile build per `IL0` window, then two
/// independent `IL1` recurrences per iteration (the profile backend's
/// instruction-level parallelism).
fn profile_rectangle(
    params: &Step2Params<'_>,
    list0: &[u32],
    list1: &[u32],
    scratch: &mut KeyScratch,
    out: &mut Vec<Candidate>,
) {
    let l = params.window_len();
    if scratch.profiles.is_empty() {
        scratch.profiles.push(ScoreProfile::new());
    }
    let prof = &mut scratch.profiles[0];
    for (i, &pos0) in list0.iter().enumerate() {
        prof.build(params.matrix, &scratch.w0[i * l..(i + 1) * l]);
        let mut j = 0;
        while j + 2 <= list1.len() {
            let (a, b) = profile_score2(
                params.kernel,
                prof,
                &scratch.w1[j * l..(j + 1) * l],
                &scratch.w1[(j + 1) * l..(j + 2) * l],
            );
            if a >= params.threshold {
                out.push(Candidate {
                    pos0,
                    pos1: list1[j],
                    score: a,
                });
            }
            if b >= params.threshold {
                out.push(Candidate {
                    pos0,
                    pos1: list1[j + 1],
                    score: b,
                });
            }
            j += 2;
        }
        if j < list1.len() {
            let score = profile_score(params.kernel, prof, &scratch.w1[j * l..(j + 1) * l]);
            if score >= params.threshold {
                out.push(Candidate {
                    pos0,
                    pos1: list1[j],
                    score,
                });
            }
        }
    }
}

/// Batched lane loop (the `simd`, `wide` and `split` backends):
/// transpose the lane-axis windows once per key, then walk the pair
/// rectangle in cache-sized tiles — profiles for an i-tile are built
/// together, and each j-tile of the interleaved stream is reused by
/// every profile of the i-tile before moving on (the PE array's
/// broadcast, tiled for a cache hierarchy instead of wires).
///
/// With `transposed` set (bucketed schedule, `|IL1| < |IL0|`) the
/// profile axis is `IL1` scored under `profile_matrix` =
/// [`transposed_matrix`] and the lanes stream `IL0`, so lanes fill from
/// the larger list while every recurrence step adds the same
/// substitution score — hits are recorded in `(i0, i1)` coordinates
/// either way and sorted back to the scalar loop's lexicographic order.
#[allow(clippy::too_many_arguments)]
fn lanes_rectangle(
    params: &Step2Params<'_>,
    backend: KernelBackend,
    profile_matrix: &SubstitutionMatrix,
    transposed: bool,
    list0: &[u32],
    list1: &[u32],
    scratch: &mut KeyScratch,
    out: &mut Vec<Candidate>,
) {
    let l = params.window_len();
    let KeyScratch {
        w0,
        w1,
        il1,
        profiles,
        hits,
    } = scratch;
    let (prof_rows, lane_rows, np, nl) = if transposed {
        (&*w1, &*w0, list1.len(), list0.len())
    } else {
        (&*w0, &*w1, list0.len(), list1.len())
    };
    il1.build(lane_rows, l);
    profiles.resize_with(TILE_I, ScoreProfile::new);
    hits.clear();

    let width = backend.lane_width();
    let mut lanes16 = [0i32; LANES];
    let mut lanes32 = [0i32; WIDE_LANES];
    for (ti, tj) in tile_walk(np, nl, l, width) {
        // First j-tile of an i-tile: (re)build that i-tile's profiles.
        if tj.start == 0 {
            for i in ti.clone() {
                profiles[i - ti.start].build(profile_matrix, &prof_rows[i * l..(i + 1) * l]);
            }
        }
        for i in ti.clone() {
            let prof = &profiles[i - ti.start];
            let mut j = tj.start;
            while j < tj.end {
                let block: &[i32] = match backend {
                    KernelBackend::Wide => {
                        score_lanes_wide(params.kernel, prof, il1, j, &mut lanes32);
                        &lanes32
                    }
                    KernelBackend::Split => {
                        score_lanes_split(params.kernel, prof, il1, j, &mut lanes32);
                        &lanes32
                    }
                    // Scalar/Profile are never routed here; treat them
                    // as the 16-lane path to keep the match total.
                    KernelBackend::Simd | KernelBackend::Scalar | KernelBackend::Profile => {
                        score_lanes(params.kernel, prof, il1, j, &mut lanes16);
                        &lanes16
                    }
                };
                let take = width.min(tj.end - j);
                for (t, &score) in block[..take].iter().enumerate() {
                    if score >= params.threshold {
                        let (hi, hj) = if transposed { (j + t, i) } else { (i, j + t) };
                        hits.push((hi as u32, hj as u32, score));
                    }
                }
                j += width;
            }
        }
    }

    // Tiles (and the transposed orientation) visit (i0, i1) out of
    // order; restore the scalar loop's lexicographic candidate order.
    hits.sort_unstable();
    out.extend(hits.iter().map(|&(i, j, score)| Candidate {
        pos0: list0[i as usize],
        pos1: list1[j as usize],
        score,
    }));
}

/// Software step 2 over all keys with `threads` workers (1 = the
/// sequential baseline). Candidates come back in key-major order
/// regardless of thread count.
pub fn run_software(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    threads: usize,
) -> (Vec<Candidate>, Step2Stats) {
    let key_count = idx0.key_count() as u32;
    run_software_keys(flat0, idx0, flat1, idx1, params, 0..key_count, threads)
}

/// Software step 2 restricted to a key range (used standalone by the
/// hybrid CPU+FPGA backend).
pub fn run_software_keys(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
) -> (Vec<Candidate>, Step2Stats) {
    let (out, stats, _) =
        run_software_keys_inner(flat0, idx0, flat1, idx1, params, keys, threads, None);
    (out, stats)
}

/// [`run_software_keys`] that also returns per-unit wall timings for
/// the flight recorder. Candidates and stats are byte-identical to the
/// untimed driver; the only extra work is two `epoch.elapsed()` reads
/// per unit, outside the kernels.
#[allow(clippy::too_many_arguments)]
pub fn run_software_keys_timed(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
    epoch: &std::time::Instant,
) -> (Vec<Candidate>, Step2Stats, Vec<ItemTiming>) {
    run_software_keys_inner(flat0, idx0, flat1, idx1, params, keys, threads, Some(epoch))
}

#[allow(clippy::too_many_arguments)]
fn run_software_keys_inner(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
    epoch: Option<&std::time::Instant>,
) -> (Vec<Candidate>, Step2Stats, Vec<ItemTiming>) {
    assert_eq!(idx0.key_count(), idx1.key_count(), "incompatible indexes");
    let threads = threads.max(1);
    let backend = params.resolved_backend();
    let tmat = transposed_matrix(params.matrix);

    if threads == 1 {
        // Sequentially, both schedules walk keys in order; only the
        // per-rectangle lane routing differs, and that is a function of
        // the schedule, not of the item partition.
        let mut scratch = KeyScratch::default();
        let mut out = Vec::new();
        let mut stats = Step2Stats::default();
        let t0 = epoch.map(|e| e.elapsed().as_secs_f64());
        run_key_range(
            flat0,
            idx0,
            flat1,
            idx1,
            params,
            backend,
            &tmat,
            keys,
            &mut scratch,
            &mut out,
            &mut stats,
        );
        stats.candidates = out.len() as u64;
        let times = unit_timing(epoch, t0, 0, 0, 0.0, stats.pairs, stats.candidates)
            .into_iter()
            .collect();
        return (out, stats, times);
    }

    match params.schedule {
        Step2Schedule::Contiguous => run_contiguous(
            flat0, idx0, flat1, idx1, params, backend, &tmat, keys, threads, epoch,
        ),
        Step2Schedule::Bucketed => run_bucketed(
            flat0, idx0, flat1, idx1, params, backend, &tmat, keys, threads, epoch,
        ),
    }
}

/// Close one unit's timing record: `t0` was read before the kernel,
/// "now" is read here (so the unit's span is kernel + send; the send
/// share is subtracted back out). Returns `None` when timing is off.
#[allow(clippy::too_many_arguments)]
fn unit_timing(
    epoch: Option<&std::time::Instant>,
    t0: Option<f64>,
    item: usize,
    worker: u32,
    send_seconds: f64,
    pairs: u64,
    candidates: u64,
) -> Option<ItemTiming> {
    let (e, t0) = (epoch?, t0?);
    Some(ItemTiming {
        item,
        worker,
        start_seconds: t0,
        kernel_seconds: (e.elapsed().as_secs_f64() - t0 - send_seconds).max(0.0),
        send_seconds,
        pairs,
        candidates,
    })
}

/// Contiguous multi-threaded schedule: one balanced key-range chunk per
/// worker, results concatenated in chunk (= key) order.
#[allow(clippy::too_many_arguments)]
fn run_contiguous(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    backend: KernelBackend,
    tmat: &SubstitutionMatrix,
    keys: std::ops::Range<u32>,
    threads: usize,
    epoch: Option<&std::time::Instant>,
) -> (Vec<Candidate>, Step2Stats, Vec<ItemTiming>) {
    let chunks = balanced_chunks(idx0, idx1, keys, threads);
    if chunks.is_empty() {
        return (Vec::new(), Step2Stats::default(), Vec::new());
    }
    let mut results: Vec<(Vec<Candidate>, Step2Stats, Option<ItemTiming>)> =
        Vec::with_capacity(chunks.len());
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .enumerate()
            .map(|(w, range)| {
                s.spawn(move |_| {
                    let mut scratch = KeyScratch::default();
                    let mut out = Vec::new();
                    let mut stats = Step2Stats::default();
                    let t0 = epoch.map(|e| e.elapsed().as_secs_f64());
                    run_key_range(
                        flat0,
                        idx0,
                        flat1,
                        idx1,
                        params,
                        backend,
                        tmat,
                        range,
                        &mut scratch,
                        &mut out,
                        &mut stats,
                    );
                    let timing =
                        unit_timing(epoch, t0, w, w as u32, 0.0, stats.pairs, out.len() as u64);
                    (out, stats, timing)
                })
            })
            .collect();
        for h in handles {
            // analyzer: allow(hot-path-no-panic) -- join only fails if a worker already panicked
            results.push(h.join().expect("step-2 worker panicked"));
        }
    })
    // analyzer: allow(hot-path-no-panic) -- scope only fails if a worker already panicked
    .expect("step-2 scope");

    let mut out = Vec::new();
    let mut stats = Step2Stats::default();
    let mut times = Vec::new();
    for (mut part, st, timing) in results {
        out.append(&mut part);
        stats.pairs += st.pairs;
        stats.active_keys += st.active_keys;
        times.extend(timing);
    }
    stats.candidates = out.len() as u64;
    (out, stats, times)
}

/// Bucketed multi-threaded schedule: workers pull [`WorkItem`]s off an
/// atomic counter in heaviest-first order, then per-item results are
/// stitched back together in item (= key) order — so the merged output
/// is independent of which worker finished which item when.
#[allow(clippy::too_many_arguments)]
fn run_bucketed(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    backend: KernelBackend,
    tmat: &SubstitutionMatrix,
    keys: std::ops::Range<u32>,
    threads: usize,
    epoch: Option<&std::time::Instant>,
) -> (Vec<Candidate>, Step2Stats, Vec<ItemTiming>) {
    let items = bucketed_items(idx0, idx1, keys);
    let order = lpt_order(&items);
    if items.is_empty() {
        return (Vec::new(), Step2Stats::default(), Vec::new());
    }
    let next = AtomicUsize::new(0);
    let mut collected: Vec<(usize, Vec<Candidate>, Step2Stats)> = Vec::with_capacity(items.len());
    let mut times: Vec<ItemTiming> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(items.len()))
            .map(|w| {
                let (items, order, next) = (&items, &order, &next);
                s.spawn(move |_| {
                    let mut scratch = KeyScratch::default();
                    let mut mine = Vec::new();
                    let mut my_times = Vec::new();
                    loop {
                        let t = next.fetch_add(1, Ordering::Relaxed);
                        if t >= order.len() {
                            break;
                        }
                        let idx = order[t];
                        let t0 = epoch.map(|e| e.elapsed().as_secs_f64());
                        // analyzer: allow(hot-path-no-alloc) -- per-item result vector, moved into the key-order merge
                        let mut out = Vec::new();
                        let mut st = Step2Stats::default();
                        run_key_range(
                            flat0,
                            idx0,
                            flat1,
                            idx1,
                            params,
                            backend,
                            tmat,
                            items[idx].keys.clone(),
                            &mut scratch,
                            &mut out,
                            &mut st,
                        );
                        my_times.extend(unit_timing(
                            epoch,
                            t0,
                            idx,
                            w as u32,
                            0.0,
                            st.pairs,
                            out.len() as u64,
                        ));
                        mine.push((idx, out, st));
                    }
                    (mine, my_times)
                })
            })
            .collect();
        for h in handles {
            // analyzer: allow(hot-path-no-panic) -- join only fails if a worker already panicked
            let (mine, my_times) = h.join().expect("step-2 worker panicked");
            collected.extend(mine);
            times.extend(my_times);
        }
    })
    // analyzer: allow(hot-path-no-panic) -- scope only fails if a worker already panicked
    .expect("step-2 scope");

    collected.sort_unstable_by_key(|&(idx, ..)| idx);
    times.sort_unstable_by_key(|t| t.item);
    let mut out = Vec::new();
    let mut stats = Step2Stats::default();
    for (_, mut part, st) in collected {
        out.append(&mut part);
        stats.pairs += st.pairs;
        stats.active_keys += st.active_keys;
    }
    stats.candidates = out.len() as u64;
    (out, stats, times)
}

/// Cut `keys` into at most `threads` ranges of roughly equal pair mass
/// (greedy prefix cuts over the per-key masses), dropping ranges that
/// carry no pairs so no worker is spawned on a zero-pair range.
fn balanced_chunks(
    idx0: &SeedIndex,
    idx1: &SeedIndex,
    keys: std::ops::Range<u32>,
    threads: usize,
) -> Vec<std::ops::Range<u32>> {
    let masses: Vec<u64> = keys
        .clone()
        .map(|k| idx0.list(k).len() as u64 * idx1.list(k).len() as u64)
        .collect();
    let total_pairs: u64 = masses.iter().sum();
    let per = (total_pairs / threads as u64).max(1);
    let mut cuts = vec![keys.start];
    let mut acc = 0u64;
    for (off, &mass) in masses.iter().enumerate() {
        acc += mass;
        if acc >= per && cuts.len() < threads {
            cuts.push(keys.start + off as u32 + 1);
            acc = 0;
        }
    }
    cuts.push(keys.end);

    let has_pairs = |r: &std::ops::Range<u32>| {
        masses[(r.start - keys.start) as usize..(r.end - keys.start) as usize]
            .iter()
            .any(|&m| m > 0)
    };
    cuts.windows(2)
        .map(|w| w[0]..w[1])
        .filter(has_pairs)
        .collect()
}

/// Streaming software step 2: each worker ships its finished candidate
/// block through `out_tx` as soon as its key range completes, instead
/// of waiting for the final key-major merge. Blocks arrive in chunk
/// *completion* order (key-major within a block), so the consumer must
/// be order-invariant — the pipeline's anchor dedup is. The returned
/// stats count candidates sent.
#[allow(clippy::too_many_arguments)]
pub fn run_software_stream(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
    out_tx: &channel::Sender<Vec<Candidate>>,
) -> Step2Stats {
    run_software_stream_inner(
        flat0, idx0, flat1, idx1, params, keys, threads, out_tx, None,
    )
    .0
}

/// [`run_software_stream`] that also returns per-unit wall timings for
/// the flight recorder, including the time each worker spent blocked
/// on a full overlap channel (`send_seconds`).
#[allow(clippy::too_many_arguments)]
pub fn run_software_stream_timed(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
    out_tx: &channel::Sender<Vec<Candidate>>,
    epoch: &std::time::Instant,
) -> (Step2Stats, Vec<ItemTiming>) {
    run_software_stream_inner(
        flat0,
        idx0,
        flat1,
        idx1,
        params,
        keys,
        threads,
        out_tx,
        Some(epoch),
    )
}

/// Measure one channel send: returns the seconds the worker spent
/// blocked in `send` (0 when timing is off or the batch is empty).
fn timed_send(
    tx: &channel::Sender<Vec<Candidate>>,
    out: Vec<Candidate>,
    epoch: Option<&std::time::Instant>,
) -> f64 {
    if out.is_empty() {
        return 0.0;
    }
    let s0 = epoch.map(|e| e.elapsed().as_secs_f64());
    let _ = tx.send(out);
    match (epoch, s0) {
        (Some(e), Some(s0)) => (e.elapsed().as_secs_f64() - s0).max(0.0),
        _ => 0.0,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_software_stream_inner(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
    out_tx: &channel::Sender<Vec<Candidate>>,
    epoch: Option<&std::time::Instant>,
) -> (Step2Stats, Vec<ItemTiming>) {
    assert_eq!(idx0.key_count(), idx1.key_count(), "incompatible indexes");
    let threads = threads.max(1);
    let backend = params.resolved_backend();
    let tmat = transposed_matrix(params.matrix);

    if threads == 1 {
        let mut scratch = KeyScratch::default();
        let mut out = Vec::new();
        let mut stats = Step2Stats::default();
        let t0 = epoch.map(|e| e.elapsed().as_secs_f64());
        run_key_range(
            flat0,
            idx0,
            flat1,
            idx1,
            params,
            backend,
            &tmat,
            keys,
            &mut scratch,
            &mut out,
            &mut stats,
        );
        stats.candidates = out.len() as u64;
        let send = timed_send(out_tx, out, epoch);
        let times = unit_timing(epoch, t0, 0, 0, send, stats.pairs, stats.candidates)
            .into_iter()
            .collect();
        return (stats, times);
    }

    let mut stats = Step2Stats::default();
    let mut times: Vec<ItemTiming> = Vec::new();
    match params.schedule {
        Step2Schedule::Contiguous => {
            let chunks = balanced_chunks(idx0, idx1, keys, threads);
            if chunks.is_empty() {
                return (Step2Stats::default(), Vec::new());
            }
            thread::scope(|s| {
                let handles: Vec<_> = chunks
                    .into_iter()
                    .enumerate()
                    .map(|(w, range)| {
                        let tx = out_tx.clone();
                        let tmat = &tmat;
                        s.spawn(move |_| {
                            let mut scratch = KeyScratch::default();
                            let mut out = Vec::new();
                            let mut st = Step2Stats::default();
                            let t0 = epoch.map(|e| e.elapsed().as_secs_f64());
                            run_key_range(
                                flat0,
                                idx0,
                                flat1,
                                idx1,
                                params,
                                backend,
                                tmat,
                                range,
                                &mut scratch,
                                &mut out,
                                &mut st,
                            );
                            st.candidates = out.len() as u64;
                            let candidates = st.candidates;
                            let send = timed_send(&tx, out, epoch);
                            let timing =
                                unit_timing(epoch, t0, w, w as u32, send, st.pairs, candidates);
                            (st, timing)
                        })
                    })
                    .collect();
                for h in handles {
                    // analyzer: allow(hot-path-no-panic) -- join only fails if a worker already panicked
                    let (st, timing) = h.join().expect("step-2 worker panicked");
                    stats.pairs += st.pairs;
                    stats.active_keys += st.active_keys;
                    stats.candidates += st.candidates;
                    times.extend(timing);
                }
            })
            // analyzer: allow(hot-path-no-panic) -- scope only fails if a worker already panicked
            .expect("step-2 scope");
        }
        Step2Schedule::Bucketed => {
            let items = bucketed_items(idx0, idx1, keys);
            let order = lpt_order(&items);
            if items.is_empty() {
                return (Step2Stats::default(), Vec::new());
            }
            let next = AtomicUsize::new(0);
            thread::scope(|s| {
                let handles: Vec<_> = (0..threads.min(items.len()))
                    .map(|w| {
                        let tx = out_tx.clone();
                        let (items, order, next, tmat) = (&items, &order, &next, &tmat);
                        s.spawn(move |_| {
                            let mut scratch = KeyScratch::default();
                            let mut st = Step2Stats::default();
                            let mut my_times = Vec::new();
                            loop {
                                let t = next.fetch_add(1, Ordering::Relaxed);
                                if t >= order.len() {
                                    break;
                                }
                                let idx = order[t];
                                let pairs_before = st.pairs;
                                let t0 = epoch.map(|e| e.elapsed().as_secs_f64());
                                // analyzer: allow(hot-path-no-alloc) -- per-item batch, ownership moves into the channel send
                                let mut out = Vec::new();
                                run_key_range(
                                    flat0,
                                    idx0,
                                    flat1,
                                    idx1,
                                    params,
                                    backend,
                                    tmat,
                                    items[idx].keys.clone(),
                                    &mut scratch,
                                    &mut out,
                                    &mut st,
                                );
                                st.candidates += out.len() as u64;
                                let candidates = out.len() as u64;
                                let send = timed_send(&tx, out, epoch);
                                my_times.extend(unit_timing(
                                    epoch,
                                    t0,
                                    idx,
                                    w as u32,
                                    send,
                                    st.pairs - pairs_before,
                                    candidates,
                                ));
                            }
                            (st, my_times)
                        })
                    })
                    .collect();
                for h in handles {
                    // analyzer: allow(hot-path-no-panic) -- join only fails if a worker already panicked
                    let (st, my_times) = h.join().expect("step-2 worker panicked");
                    stats.pairs += st.pairs;
                    stats.active_keys += st.active_keys;
                    stats.candidates += st.candidates;
                    times.extend(my_times);
                }
            })
            // analyzer: allow(hot-path-no-panic) -- scope only fails if a worker already panicked
            .expect("step-2 scope");
        }
    }
    times.sort_unstable_by_key(|t| t.item);
    (stats, times)
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_index::seed::subset_seed_default;
    use psc_score::blosum62;
    use psc_seqio::{Bank, Seq};

    fn setup(seqs0: &[&[u8]], seqs1: &[&[u8]]) -> (FlatBank, SeedIndex, FlatBank, SeedIndex) {
        let b0: Bank = seqs0
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::protein(format!("a{i}"), s))
            .collect();
        let b1: Bank = seqs1
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::protein(format!("b{i}"), s))
            .collect();
        let f0 = FlatBank::from_bank(&b0);
        let f1 = FlatBank::from_bank(&b1);
        let model = subset_seed_default();
        let i0 = SeedIndex::build(&f0, &model, 1);
        let i1 = SeedIndex::build(&f1, &model, 1);
        (f0, i0, f1, i1)
    }

    fn params(matrix: &SubstitutionMatrix, threshold: i32) -> Step2Params<'_> {
        Step2Params {
            matrix,
            kernel: Kernel::ClampedSum,
            span: 4,
            n_ctx: 6,
            threshold,
            kernel_backend: KernelChoice::Auto,
            schedule: Step2Schedule::default(),
        }
    }

    #[test]
    fn identical_sequences_pair_up() {
        let s = b"MKVLAWRNDCQEHFYW".as_slice();
        let (f0, i0, f1, i1) = setup(&[s], &[s]);
        let m = blosum62();
        let (cands, stats) = run_software(&f0, &i0, &f1, &i1, &params(m, 30), 1);
        assert!(!cands.is_empty());
        assert!(stats.pairs >= cands.len() as u64);
        // The strongest candidate pairs identical positions.
        assert!(cands.iter().any(|c| c.pos0 == c.pos1));
        assert_eq!(stats.candidates, cands.len() as u64);
    }

    #[test]
    fn threshold_filters() {
        let s = b"MKVLAWRNDCQEHFYW".as_slice();
        let (f0, i0, f1, i1) = setup(&[s], &[s]);
        let m = blosum62();
        let (lo, _) = run_software(&f0, &i0, &f1, &i1, &params(m, 10), 1);
        let (hi, _) = run_software(&f0, &i0, &f1, &i1, &params(m, 60), 1);
        assert!(lo.len() > hi.len());
        // The identical 16-residue window self-scores 101; a threshold
        // above that is unreachable.
        let (none, _) = run_software(&f0, &i0, &f1, &i1, &params(m, 105), 1);
        assert!(none.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        // Enough sequences to spread across keys. These are residue
        // *codes*, so banks are built with from_codes, not the ASCII
        // setup() helper.
        let seqs: Vec<Vec<u8>> = (0..30)
            .map(|i| {
                (0..120u32)
                    .map(|j| (((i * 31 + j * 7) % 97) % 20) as u8)
                    .collect()
            })
            .collect();
        let mk = |seqs: &[Vec<u8>]| -> (FlatBank, SeedIndex) {
            let bank: Bank = seqs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    Seq::from_codes(format!("s{i}"), s.clone(), psc_seqio::SeqKind::Protein)
                })
                .collect();
            let flat = FlatBank::from_bank(&bank);
            let idx = SeedIndex::build(&flat, &subset_seed_default(), 1);
            (flat, idx)
        };
        let (f0, i0) = mk(&seqs);
        let (f1, i1) = mk(&seqs);
        let m = blosum62();
        let (seq_c, seq_s) = run_software(&f0, &i0, &f1, &i1, &params(m, 18), 1);
        for threads in [2, 4, 7] {
            let (par_c, par_s) = run_software(&f0, &i0, &f1, &i1, &params(m, 18), threads);
            assert_eq!(seq_c, par_c, "threads={threads}");
            assert_eq!(seq_s, par_s, "threads={threads}");
        }
        assert!(!seq_c.is_empty());
    }

    #[test]
    fn kernel_backends_agree() {
        // Candidates (values *and* order) must be identical across every
        // kernel backend, both ungapped kernels, odd/even list lengths,
        // and thread counts.
        let seqs: Vec<Vec<u8>> = (0..25)
            .map(|i| {
                (0..130u32)
                    .map(|j| (((i * 29 + j * 13) % 101) % 20) as u8)
                    .collect()
            })
            .collect();
        let mk = |seqs: &[Vec<u8>]| -> (FlatBank, SeedIndex) {
            let bank: Bank = seqs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    Seq::from_codes(format!("s{i}"), s.clone(), psc_seqio::SeqKind::Protein)
                })
                .collect();
            let flat = FlatBank::from_bank(&bank);
            let idx = SeedIndex::build(&flat, &subset_seed_default(), 1);
            (flat, idx)
        };
        let (f0, i0) = mk(&seqs[..25]);
        let (f1, i1) = mk(&seqs[..23]);
        let m = blosum62();
        for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
            let base = Step2Params {
                kernel,
                kernel_backend: KernelChoice::Scalar,
                ..params(m, 18)
            };
            let (want_c, want_s) = run_software(&f0, &i0, &f1, &i1, &base, 1);
            assert!(!want_c.is_empty());
            for choice in [
                KernelChoice::Auto,
                KernelChoice::Profile,
                KernelChoice::Simd,
                KernelChoice::Wide,
                KernelChoice::Split,
            ] {
                for schedule in [Step2Schedule::Contiguous, Step2Schedule::Bucketed] {
                    for threads in [1, 3] {
                        let p = Step2Params {
                            kernel_backend: choice,
                            schedule,
                            ..base
                        };
                        let (c, s) = run_software(&f0, &i0, &f1, &i1, &p, threads);
                        assert_eq!(
                            want_c, c,
                            "{kernel:?} {choice:?} {schedule:?} threads={threads}"
                        );
                        assert_eq!(
                            want_s, s,
                            "{kernel:?} {choice:?} {schedule:?} threads={threads}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn simd_tile_count_matches_tiling() {
        assert_eq!(simd_tile_count(0, 100, 60), 0);
        assert_eq!(simd_tile_count(100, 0, 60), 0);
        // One tile covers small rectangles entirely.
        assert_eq!(simd_tile_count(1, 1, 60), 1);
        assert_eq!(simd_tile_count(TILE_I, 8, 60), 1);
        // i splits every TILE_I rows.
        assert_eq!(simd_tile_count(TILE_I + 1, 8, 60), 2);
        // j splits every tile_j columns (the simd_rectangle formula).
        let l = 60;
        let tile_j = simd_tile_j(l);
        assert_eq!(simd_tile_count(1, tile_j, l), 1);
        assert_eq!(simd_tile_count(1, tile_j + 1, l), 2);
    }

    #[test]
    fn simd_tile_count_equals_walk_length() {
        // The closed form must agree with the tile sequence the hot
        // loop actually iterates, across boundary-straddling shapes and
        // window lengths (including extremes that hit both clamps).
        let tile_j_60 = simd_tile_j(60);
        for l in [1, 4, 16, 60, 200, TILE_J_BYTES, TILE_J_BYTES * 2] {
            for n0 in [0, 1, TILE_I - 1, TILE_I, TILE_I + 1, 3 * TILE_I + 5] {
                for n1 in [0, 1, tile_j_60 - 1, tile_j_60, tile_j_60 + 1, 70_000] {
                    let walked = simd_tile_walk(n0, n1, l).count() as u64;
                    assert_eq!(simd_tile_count(n0, n1, l), walked, "n0={n0} n1={n1} l={l}");
                }
            }
        }
        // Walked tiles cover the rectangle exactly once, in order.
        let (n0, n1, l) = (TILE_I + 3, tile_j_60 + 9, 60);
        let mut covered = vec![false; n0 * n1];
        for (ti, tj) in simd_tile_walk(n0, n1, l) {
            for i in ti {
                for j in tj.clone() {
                    assert!(!covered[i * n1 + j], "tile overlap at ({i},{j})");
                    covered[i * n1 + j] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "walk left cells uncovered");
    }

    #[test]
    fn tile_count_matches_walk_for_wide_lanes() {
        // The generalized closed form must agree with the generalized
        // walk at the 32-lane width the wide/split kernels step by.
        for l in [1, 16, 60, 200] {
            let tj = tile_j_for(l, WIDE_LANES);
            for n0 in [0, 1, TILE_I, TILE_I + 1] {
                for n1 in [0, 1, tj - 1, tj, tj + 1, 3 * tj + 17] {
                    let walked = tile_walk(n0, n1, l, WIDE_LANES).count() as u64;
                    assert_eq!(
                        tile_count(n0, n1, l, WIDE_LANES),
                        walked,
                        "n0={n0} n1={n1} l={l}"
                    );
                }
            }
            // The j tile is always a whole number of 32-wide lane blocks.
            assert_eq!(tj % WIDE_LANES, 0, "l={l}");
        }
    }

    #[test]
    fn bucketed_items_partition_key_range() {
        let seqs: Vec<Vec<u8>> = (0..40)
            .map(|i| {
                (0..150u32)
                    .map(|j| (((i * 37 + j * 11) % 89) % 20) as u8)
                    .collect()
            })
            .collect();
        let bank: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("s{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        let flat = FlatBank::from_bank(&bank);
        let idx = SeedIndex::build(&flat, &subset_seed_default(), 1);
        let keys = 0..idx.key_count() as u32;
        let items = bucketed_items(&idx, &idx, keys.clone());

        // Item key ranges are non-empty, contiguous and in order: their
        // concatenation is exactly the input key range (a permutation of
        // every key, each covered once).
        let mut cursor = keys.start;
        for item in &items {
            assert_eq!(item.keys.start, cursor, "gap or overlap before item");
            assert!(item.keys.start < item.keys.end, "empty item");
            assert_eq!(item.bucket, bucket_of_mass(item.mass));
            let mass: u64 = item
                .keys
                .clone()
                .map(|k| idx.list(k).len() as u64 * idx.list(k).len() as u64)
                .sum();
            assert_eq!(mass, item.mass, "item mass mismatch");
            cursor = item.keys.end;
        }
        assert_eq!(cursor, keys.end, "items do not cover the key range");

        // A heavy key owns its item; light keys coalesce.
        for item in &items {
            if item.keys.len() > 1 {
                for k in item.keys.clone() {
                    let m = idx.list(k).len() as u64 * idx.list(k).len() as u64;
                    assert!(m < ITEM_MASS, "heavy key {k} coalesced into a run");
                }
            }
        }

        // LPT order is a heaviest-first permutation of all items.
        let order = lpt_order(&items);
        let mut seen = vec![false; items.len()];
        for &i in &order {
            assert!(!seen[i], "duplicate item in lpt order");
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s), "lpt order dropped an item");
        for w in order.windows(2) {
            assert!(items[w[0]].mass >= items[w[1]].mass, "not heaviest-first");
        }
    }

    #[test]
    fn bucket_of_mass_matches_log2_convention() {
        assert_eq!(bucket_of_mass(0), 0);
        assert_eq!(bucket_of_mass(1), 1);
        assert_eq!(bucket_of_mass(2), 2);
        assert_eq!(bucket_of_mass(3), 2);
        assert_eq!(bucket_of_mass(4), 3);
        assert_eq!(bucket_of_mass(u64::MAX), 64);
    }

    #[test]
    fn lane_orientation_and_slots_are_consistent() {
        // Contiguous never transposes (it reproduces the historical
        // walk); bucketed picks the larger side as the lane axis and
        // falls back to the profile path when both sides are narrow.
        let c = Step2Schedule::Contiguous;
        let b = Step2Schedule::Bucketed;
        assert_eq!(lane_orientation(3, 500, c), Some(false));
        // Lanes already run over the larger il1 side: no transpose.
        assert_eq!(lane_orientation(3, 500, b), Some(false));
        // il0 is the larger side: transpose so lanes run over it.
        assert_eq!(lane_orientation(500, 3, b), Some(true));
        assert_eq!(lane_orientation(5, 7, b), None);
        assert_eq!(lane_orientation(5, 7, c), Some(false));

        // Slot accounting mirrors orientation: scalar-width backends
        // waste nothing; 16-lane contiguous pads the il1 axis; bucketed
        // pads the larger axis so narrow-il1 rectangles stop wasting
        // nearly the whole vector.
        let wide = KernelBackend::Wide;
        assert_eq!(
            rectangle_lane_slots(10, 10, KernelBackend::Scalar, b),
            (100, 100)
        );
        let (useful, total) = rectangle_lane_slots(3, 500, KernelBackend::Simd, c);
        assert_eq!(useful, 1500);
        assert_eq!(total, 3 * 500u64.div_ceil(16) * 16);
        let (useful_b, total_b) = rectangle_lane_slots(3, 500, wide, b);
        assert_eq!(useful_b, 1500);
        assert_eq!(total_b, 3 * 500u64.div_ceil(32) * 32);
        // Narrow-both rectangles route to the profile path: no padding.
        assert_eq!(rectangle_lane_slots(5, 7, wide, b), (35, 35));
        // Contiguous 16-lane on a lane-starved rectangle: 500×1 pads
        // each row to a full vector.
        let (u, t) = rectangle_lane_slots(500, 1, KernelBackend::Simd, c);
        assert_eq!((u, t), (500, 500 * 16));
        assert!(u * 10 < t, "expected heavy padding on starved axis");
    }

    #[test]
    fn transposed_matrix_swaps_arguments() {
        let m = blosum62();
        let t = transposed_matrix(m);
        for a in 0..AA_ALPHABET_LEN as u8 {
            for b in 0..AA_ALPHABET_LEN as u8 {
                assert_eq!(m.score(a, b), t.score(b, a));
            }
        }
    }

    #[test]
    fn disjoint_banks_no_pairs() {
        let (f0, i0, f1, i1) = setup(&[b"MKVLMKVLMKVL"], &[b"GGGGGGGGGGGG"]);
        let m = blosum62();
        let (cands, stats) = run_software(&f0, &i0, &f1, &i1, &params(m, 1), 1);
        assert!(cands.is_empty());
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.active_keys, 0);
    }

    #[test]
    fn gather_windows_layout() {
        let (f0, i0, _, _) = setup(&[b"MKVLAWRNDCQEHFYW"], &[b"MKVLAWRNDCQEHFYW"]);
        let key = i0.nonempty_keys().next().unwrap();
        let list = i0.list(key);
        let mut buf = Vec::new();
        gather_windows(&f0, list, 4, 6, &mut buf);
        assert_eq!(buf.len(), list.len() * 16);
        // Each window must equal the direct extraction.
        for (i, &pos) in list.iter().enumerate() {
            assert_eq!(&buf[i * 16..(i + 1) * 16], f0.window(pos, 4, 6).as_slice());
        }
    }
}
