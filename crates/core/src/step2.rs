//! Step 2 — all-pairs ungapped extension over matching index lists.
//!
//! This is the paper's critical section (97 % of sequential runtime,
//! Table 1). The software implementations here are the "Sequential"
//! baseline of Table 4 and the host-side reference the RASC backend is
//! verified against; they were deliberately written the way the paper
//! describes ("primarily designed to have an optimal efficiency on a
//! parallel support"): gather the fixed-length windows per key, then a
//! dense rectangular pair loop — exactly the data flow the PE array
//! consumes.
//!
//! Three interchangeable kernel backends score that rectangle (selected
//! by [`psc_align::KernelChoice`], auto-detected by default): the
//! original per-pair `scalar` kernel, a score-`profile` kernel that
//! builds one substitution table per `IL0` window, and a batched `simd`
//! kernel that transposes `IL1` and scores [`psc_align::LANES`] window
//! pairs per step through cache-sized tiles. All three emit bit-identical
//! candidates in identical order.

use crossbeam::{channel, thread};
use psc_align::{
    profile_score, profile_score2, score_lanes, ungapped_score, InterleavedWindows, Kernel,
    KernelBackend, KernelChoice, ScoreProfile, LANES,
};
use psc_index::{FlatBank, SeedIndex};
use psc_score::SubstitutionMatrix;

/// A pair that survived step 2: global seed positions in each bank and
/// the windowed score.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Candidate {
    pub pos0: u32,
    pub pos1: u32,
    pub score: i32,
}

/// Instrumentation counters for step 2.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Step2Stats {
    /// Window pairs scored (`Σ_k |IL0_k|·|IL1_k|`).
    pub pairs: u64,
    /// Pairs at or above the threshold.
    pub candidates: u64,
    /// Keys with work on both sides.
    pub active_keys: u64,
}

/// Gather the extension windows for every position of an index list into
/// one contiguous buffer (the byte stream an input controller would DMA).
pub fn gather_windows(flat: &FlatBank, list: &[u32], span: usize, n_ctx: usize, out: &mut Vec<u8>) {
    let l = span + 2 * n_ctx;
    out.clear();
    out.resize(list.len() * l, 0);
    for (i, &pos) in list.iter().enumerate() {
        flat.window_into(pos, span, n_ctx, &mut out[i * l..(i + 1) * l]);
    }
}

/// Scoring parameters threaded through the software backends.
#[derive(Clone, Copy, Debug)]
pub struct Step2Params<'m> {
    pub matrix: &'m SubstitutionMatrix,
    pub kernel: Kernel,
    pub span: usize,
    pub n_ctx: usize,
    pub threshold: i32,
    /// Which kernel implementation scores the pair rectangle
    /// (auto-detected by default; see [`Step2Params::resolved_backend`]).
    pub kernel_backend: KernelChoice,
}

impl Step2Params<'_> {
    /// Window length `W + 2N` of one extension window.
    #[inline]
    pub fn window_len(&self) -> usize {
        self.span + 2 * self.n_ctx
    }

    /// The concrete kernel backend this run will use.
    pub fn resolved_backend(&self) -> KernelBackend {
        self.kernel_backend.resolve(self.window_len(), self.matrix)
    }
}

/// `IL0` rows whose profiles are built together (one i-tile).
const TILE_I: usize = 32;

/// Target bytes of interleaved `IL1` stream per j-tile — sized so a
/// tile stays cache-resident while every profile of the i-tile streams
/// over it.
const TILE_J_BYTES: usize = 32 << 10;

/// j-tile width (in windows) for a given window length — the one
/// formula both the hot loop and the analytic tile count derive from.
fn simd_tile_j(window_len: usize) -> usize {
    (TILE_J_BYTES / window_len.max(1)).clamp(LANES, 1 << 14) / LANES * LANES
}

/// The exact `(i, j)` tile sequence [`simd_rectangle`] walks for one
/// key's `n0 × n1` pair rectangle — i-tiles outer, j-tiles inner. The
/// hot loop iterates this directly, and tests pin [`simd_tile_count`]'s
/// closed form to `simd_tile_walk(..).count()`, so the telemetry number
/// cannot drift from the real walk.
#[doc(hidden)]
pub fn simd_tile_walk(
    n0: usize,
    n1: usize,
    window_len: usize,
) -> impl Iterator<Item = (std::ops::Range<usize>, std::ops::Range<usize>)> {
    let tile_j = simd_tile_j(window_len);
    (0..n0).step_by(TILE_I).flat_map(move |i0| {
        let i_end = (i0 + TILE_I).min(n0);
        (0..n1)
            .step_by(tile_j)
            .map(move |j0| (i0..i_end, j0..(j0 + tile_j).min(n1)))
    })
}

/// Number of cache tiles the SIMD kernel walks for one key's
/// `n0 × n1` pair rectangle — the telemetry counterpart of
/// [`simd_tile_walk`], computed analytically so instrumentation never
/// touches the hot loop.
pub fn simd_tile_count(n0: usize, n1: usize, window_len: usize) -> u64 {
    if n0 == 0 || n1 == 0 {
        return 0;
    }
    n0.div_ceil(TILE_I) as u64 * n1.div_ceil(simd_tile_j(window_len)) as u64
}

/// Reusable scratch buffers for one worker's key range, so the per-key
/// loop allocates nothing in steady state.
#[derive(Default)]
struct KeyScratch {
    w0: Vec<u8>,
    w1: Vec<u8>,
    il1: InterleavedWindows,
    profiles: Vec<ScoreProfile>,
    /// `(i, j, score)` hits of the current key, tile order.
    hits: Vec<(u32, u32, i32)>,
}

/// Run step 2 on one key range, appending candidates (key-major order).
#[allow(clippy::too_many_arguments)]
fn run_key_range(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    backend: KernelBackend,
    keys: std::ops::Range<u32>,
    out: &mut Vec<Candidate>,
    stats: &mut Step2Stats,
) {
    let mut scratch = KeyScratch::default();
    for key in keys {
        let list0 = idx0.list(key);
        let list1 = idx1.list(key);
        if list0.is_empty() || list1.is_empty() {
            continue;
        }
        stats.active_keys += 1;
        stats.pairs += list0.len() as u64 * list1.len() as u64;
        gather_windows(flat0, list0, params.span, params.n_ctx, &mut scratch.w0);
        gather_windows(flat1, list1, params.span, params.n_ctx, &mut scratch.w1);
        match backend {
            KernelBackend::Scalar => {
                scalar_rectangle(params, list0, list1, &scratch.w0, &scratch.w1, out)
            }
            KernelBackend::Profile => profile_rectangle(params, list0, list1, &mut scratch, out),
            KernelBackend::Simd => simd_rectangle(params, list0, list1, &mut scratch, out),
        }
    }
    stats.candidates = out.len() as u64;
}

/// The original per-pair loop (the paper's sequential kernel).
fn scalar_rectangle(
    params: &Step2Params<'_>,
    list0: &[u32],
    list1: &[u32],
    w0: &[u8],
    w1: &[u8],
    out: &mut Vec<Candidate>,
) {
    let l = params.window_len();
    for (i, &pos0) in list0.iter().enumerate() {
        let win0 = &w0[i * l..(i + 1) * l];
        for (j, &pos1) in list1.iter().enumerate() {
            let win1 = &w1[j * l..(j + 1) * l];
            let score = ungapped_score(params.kernel, params.matrix, win0, win1);
            if score >= params.threshold {
                out.push(Candidate { pos0, pos1, score });
            }
        }
    }
}

/// Score-profile loop: one profile build per `IL0` window, then two
/// independent `IL1` recurrences per iteration (the profile backend's
/// instruction-level parallelism).
fn profile_rectangle(
    params: &Step2Params<'_>,
    list0: &[u32],
    list1: &[u32],
    scratch: &mut KeyScratch,
    out: &mut Vec<Candidate>,
) {
    let l = params.window_len();
    if scratch.profiles.is_empty() {
        scratch.profiles.push(ScoreProfile::new());
    }
    let prof = &mut scratch.profiles[0];
    for (i, &pos0) in list0.iter().enumerate() {
        prof.build(params.matrix, &scratch.w0[i * l..(i + 1) * l]);
        let mut j = 0;
        while j + 2 <= list1.len() {
            let (a, b) = profile_score2(
                params.kernel,
                prof,
                &scratch.w1[j * l..(j + 1) * l],
                &scratch.w1[(j + 1) * l..(j + 2) * l],
            );
            if a >= params.threshold {
                out.push(Candidate {
                    pos0,
                    pos1: list1[j],
                    score: a,
                });
            }
            if b >= params.threshold {
                out.push(Candidate {
                    pos0,
                    pos1: list1[j + 1],
                    score: b,
                });
            }
            j += 2;
        }
        if j < list1.len() {
            let score = profile_score(params.kernel, prof, &scratch.w1[j * l..(j + 1) * l]);
            if score >= params.threshold {
                out.push(Candidate {
                    pos0,
                    pos1: list1[j],
                    score,
                });
            }
        }
    }
}

/// Batched SIMD loop: transpose `IL1` once per key, then walk the
/// `|IL0|×|IL1|` rectangle in cache-sized tiles — profiles for an
/// i-tile are built together, and each j-tile of the interleaved stream
/// is reused by every profile of the i-tile before moving on (the PE
/// array's broadcast, tiled for a cache hierarchy instead of wires).
fn simd_rectangle(
    params: &Step2Params<'_>,
    list0: &[u32],
    list1: &[u32],
    scratch: &mut KeyScratch,
    out: &mut Vec<Candidate>,
) {
    let l = params.window_len();
    let (n0, n1) = (list0.len(), list1.len());
    scratch.il1.build(&scratch.w1, l);
    scratch.profiles.resize_with(TILE_I, ScoreProfile::new);
    scratch.hits.clear();

    let mut lanes = [0i32; LANES];
    for (ti, tj) in simd_tile_walk(n0, n1, l) {
        // First j-tile of an i-tile: (re)build that i-tile's profiles.
        if tj.start == 0 {
            for i in ti.clone() {
                scratch.profiles[i - ti.start]
                    .build(params.matrix, &scratch.w0[i * l..(i + 1) * l]);
            }
        }
        for i in ti.clone() {
            let prof = &scratch.profiles[i - ti.start];
            let mut j = tj.start;
            while j < tj.end {
                score_lanes(params.kernel, prof, &scratch.il1, j, &mut lanes);
                let take = LANES.min(tj.end - j);
                for (t, &score) in lanes[..take].iter().enumerate() {
                    if score >= params.threshold {
                        scratch.hits.push((i as u32, (j + t) as u32, score));
                    }
                }
                j += LANES;
            }
        }
    }

    // Tiles visit (i, j) out of order; restore the scalar loop's
    // lexicographic candidate order.
    scratch.hits.sort_unstable();
    out.extend(scratch.hits.iter().map(|&(i, j, score)| Candidate {
        pos0: list0[i as usize],
        pos1: list1[j as usize],
        score,
    }));
}

/// Software step 2 over all keys with `threads` workers (1 = the
/// sequential baseline). Candidates come back in key-major order
/// regardless of thread count.
pub fn run_software(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    threads: usize,
) -> (Vec<Candidate>, Step2Stats) {
    let key_count = idx0.key_count() as u32;
    run_software_keys(flat0, idx0, flat1, idx1, params, 0..key_count, threads)
}

/// Software step 2 restricted to a key range (used standalone by the
/// hybrid CPU+FPGA backend).
pub fn run_software_keys(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
) -> (Vec<Candidate>, Step2Stats) {
    assert_eq!(idx0.key_count(), idx1.key_count(), "incompatible indexes");
    let threads = threads.max(1);
    let backend = params.resolved_backend();

    if threads == 1 {
        let mut out = Vec::new();
        let mut stats = Step2Stats::default();
        run_key_range(
            flat0, idx0, flat1, idx1, params, backend, keys, &mut out, &mut stats,
        );
        return (out, stats);
    }

    let chunks = balanced_chunks(idx0, idx1, keys, threads);
    if chunks.is_empty() {
        return (Vec::new(), Step2Stats::default());
    }
    let mut results: Vec<(Vec<Candidate>, Step2Stats)> = Vec::with_capacity(chunks.len());
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|range| {
                s.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut stats = Step2Stats::default();
                    run_key_range(
                        flat0, idx0, flat1, idx1, params, backend, range, &mut out, &mut stats,
                    );
                    (out, stats)
                })
            })
            .collect();
        for h in handles {
            // analyzer: allow(hot-path-no-panic) -- join only fails if a worker already panicked
            results.push(h.join().expect("step-2 worker panicked"));
        }
    })
    // analyzer: allow(hot-path-no-panic) -- scope only fails if a worker already panicked
    .expect("step-2 scope");

    let mut out = Vec::new();
    let mut stats = Step2Stats::default();
    for (mut part, st) in results {
        out.append(&mut part);
        stats.pairs += st.pairs;
        stats.active_keys += st.active_keys;
    }
    stats.candidates = out.len() as u64;
    (out, stats)
}

/// Cut `keys` into at most `threads` ranges of roughly equal pair mass
/// (greedy prefix cuts over the per-key masses), dropping ranges that
/// carry no pairs so no worker is spawned on a zero-pair range.
fn balanced_chunks(
    idx0: &SeedIndex,
    idx1: &SeedIndex,
    keys: std::ops::Range<u32>,
    threads: usize,
) -> Vec<std::ops::Range<u32>> {
    let masses: Vec<u64> = keys
        .clone()
        .map(|k| idx0.list(k).len() as u64 * idx1.list(k).len() as u64)
        .collect();
    let total_pairs: u64 = masses.iter().sum();
    let per = (total_pairs / threads as u64).max(1);
    let mut cuts = vec![keys.start];
    let mut acc = 0u64;
    for (off, &mass) in masses.iter().enumerate() {
        acc += mass;
        if acc >= per && cuts.len() < threads {
            cuts.push(keys.start + off as u32 + 1);
            acc = 0;
        }
    }
    cuts.push(keys.end);

    let has_pairs = |r: &std::ops::Range<u32>| {
        masses[(r.start - keys.start) as usize..(r.end - keys.start) as usize]
            .iter()
            .any(|&m| m > 0)
    };
    cuts.windows(2)
        .map(|w| w[0]..w[1])
        .filter(has_pairs)
        .collect()
}

/// Streaming software step 2: each worker ships its finished candidate
/// block through `out_tx` as soon as its key range completes, instead
/// of waiting for the final key-major merge. Blocks arrive in chunk
/// *completion* order (key-major within a block), so the consumer must
/// be order-invariant — the pipeline's anchor dedup is. The returned
/// stats count candidates sent.
#[allow(clippy::too_many_arguments)]
pub fn run_software_stream(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    threads: usize,
    out_tx: &channel::Sender<Vec<Candidate>>,
) -> Step2Stats {
    assert_eq!(idx0.key_count(), idx1.key_count(), "incompatible indexes");
    let threads = threads.max(1);
    let backend = params.resolved_backend();

    if threads == 1 {
        let mut out = Vec::new();
        let mut stats = Step2Stats::default();
        run_key_range(
            flat0, idx0, flat1, idx1, params, backend, keys, &mut out, &mut stats,
        );
        if !out.is_empty() {
            let _ = out_tx.send(out);
        }
        return stats;
    }

    let chunks = balanced_chunks(idx0, idx1, keys, threads);
    if chunks.is_empty() {
        return Step2Stats::default();
    }
    let mut stats = Step2Stats::default();
    thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|range| {
                let tx = out_tx.clone();
                s.spawn(move |_| {
                    let mut out = Vec::new();
                    let mut st = Step2Stats::default();
                    run_key_range(
                        flat0, idx0, flat1, idx1, params, backend, range, &mut out, &mut st,
                    );
                    if !out.is_empty() {
                        let _ = tx.send(out);
                    }
                    st
                })
            })
            .collect();
        for h in handles {
            // analyzer: allow(hot-path-no-panic) -- join only fails if a worker already panicked
            let st = h.join().expect("step-2 worker panicked");
            stats.pairs += st.pairs;
            stats.active_keys += st.active_keys;
            stats.candidates += st.candidates;
        }
    })
    // analyzer: allow(hot-path-no-panic) -- scope only fails if a worker already panicked
    .expect("step-2 scope");
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use psc_index::seed::subset_seed_default;
    use psc_score::blosum62;
    use psc_seqio::{Bank, Seq};

    fn setup(seqs0: &[&[u8]], seqs1: &[&[u8]]) -> (FlatBank, SeedIndex, FlatBank, SeedIndex) {
        let b0: Bank = seqs0
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::protein(format!("a{i}"), s))
            .collect();
        let b1: Bank = seqs1
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::protein(format!("b{i}"), s))
            .collect();
        let f0 = FlatBank::from_bank(&b0);
        let f1 = FlatBank::from_bank(&b1);
        let model = subset_seed_default();
        let i0 = SeedIndex::build(&f0, &model, 1);
        let i1 = SeedIndex::build(&f1, &model, 1);
        (f0, i0, f1, i1)
    }

    fn params(matrix: &SubstitutionMatrix, threshold: i32) -> Step2Params<'_> {
        Step2Params {
            matrix,
            kernel: Kernel::ClampedSum,
            span: 4,
            n_ctx: 6,
            threshold,
            kernel_backend: KernelChoice::Auto,
        }
    }

    #[test]
    fn identical_sequences_pair_up() {
        let s = b"MKVLAWRNDCQEHFYW".as_slice();
        let (f0, i0, f1, i1) = setup(&[s], &[s]);
        let m = blosum62();
        let (cands, stats) = run_software(&f0, &i0, &f1, &i1, &params(m, 30), 1);
        assert!(!cands.is_empty());
        assert!(stats.pairs >= cands.len() as u64);
        // The strongest candidate pairs identical positions.
        assert!(cands.iter().any(|c| c.pos0 == c.pos1));
        assert_eq!(stats.candidates, cands.len() as u64);
    }

    #[test]
    fn threshold_filters() {
        let s = b"MKVLAWRNDCQEHFYW".as_slice();
        let (f0, i0, f1, i1) = setup(&[s], &[s]);
        let m = blosum62();
        let (lo, _) = run_software(&f0, &i0, &f1, &i1, &params(m, 10), 1);
        let (hi, _) = run_software(&f0, &i0, &f1, &i1, &params(m, 60), 1);
        assert!(lo.len() > hi.len());
        // The identical 16-residue window self-scores 101; a threshold
        // above that is unreachable.
        let (none, _) = run_software(&f0, &i0, &f1, &i1, &params(m, 105), 1);
        assert!(none.is_empty());
    }

    #[test]
    fn parallel_matches_sequential() {
        // Enough sequences to spread across keys. These are residue
        // *codes*, so banks are built with from_codes, not the ASCII
        // setup() helper.
        let seqs: Vec<Vec<u8>> = (0..30)
            .map(|i| {
                (0..120u32)
                    .map(|j| (((i * 31 + j * 7) % 97) % 20) as u8)
                    .collect()
            })
            .collect();
        let mk = |seqs: &[Vec<u8>]| -> (FlatBank, SeedIndex) {
            let bank: Bank = seqs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    Seq::from_codes(format!("s{i}"), s.clone(), psc_seqio::SeqKind::Protein)
                })
                .collect();
            let flat = FlatBank::from_bank(&bank);
            let idx = SeedIndex::build(&flat, &subset_seed_default(), 1);
            (flat, idx)
        };
        let (f0, i0) = mk(&seqs);
        let (f1, i1) = mk(&seqs);
        let m = blosum62();
        let (seq_c, seq_s) = run_software(&f0, &i0, &f1, &i1, &params(m, 18), 1);
        for threads in [2, 4, 7] {
            let (par_c, par_s) = run_software(&f0, &i0, &f1, &i1, &params(m, 18), threads);
            assert_eq!(seq_c, par_c, "threads={threads}");
            assert_eq!(seq_s, par_s, "threads={threads}");
        }
        assert!(!seq_c.is_empty());
    }

    #[test]
    fn kernel_backends_agree() {
        // Candidates (values *and* order) must be identical across every
        // kernel backend, both ungapped kernels, odd/even list lengths,
        // and thread counts.
        let seqs: Vec<Vec<u8>> = (0..25)
            .map(|i| {
                (0..130u32)
                    .map(|j| (((i * 29 + j * 13) % 101) % 20) as u8)
                    .collect()
            })
            .collect();
        let mk = |seqs: &[Vec<u8>]| -> (FlatBank, SeedIndex) {
            let bank: Bank = seqs
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    Seq::from_codes(format!("s{i}"), s.clone(), psc_seqio::SeqKind::Protein)
                })
                .collect();
            let flat = FlatBank::from_bank(&bank);
            let idx = SeedIndex::build(&flat, &subset_seed_default(), 1);
            (flat, idx)
        };
        let (f0, i0) = mk(&seqs[..25]);
        let (f1, i1) = mk(&seqs[..23]);
        let m = blosum62();
        for kernel in [Kernel::ClampedSum, Kernel::PaperLiteral] {
            let base = Step2Params {
                kernel,
                kernel_backend: KernelChoice::Scalar,
                ..params(m, 18)
            };
            let (want_c, want_s) = run_software(&f0, &i0, &f1, &i1, &base, 1);
            assert!(!want_c.is_empty());
            for choice in [
                KernelChoice::Auto,
                KernelChoice::Profile,
                KernelChoice::Simd,
            ] {
                for threads in [1, 3] {
                    let p = Step2Params {
                        kernel_backend: choice,
                        ..base
                    };
                    let (c, s) = run_software(&f0, &i0, &f1, &i1, &p, threads);
                    assert_eq!(want_c, c, "{kernel:?} {choice:?} threads={threads}");
                    assert_eq!(want_s, s, "{kernel:?} {choice:?} threads={threads}");
                }
            }
        }
    }

    #[test]
    fn simd_tile_count_matches_tiling() {
        assert_eq!(simd_tile_count(0, 100, 60), 0);
        assert_eq!(simd_tile_count(100, 0, 60), 0);
        // One tile covers small rectangles entirely.
        assert_eq!(simd_tile_count(1, 1, 60), 1);
        assert_eq!(simd_tile_count(TILE_I, 8, 60), 1);
        // i splits every TILE_I rows.
        assert_eq!(simd_tile_count(TILE_I + 1, 8, 60), 2);
        // j splits every tile_j columns (the simd_rectangle formula).
        let l = 60;
        let tile_j = simd_tile_j(l);
        assert_eq!(simd_tile_count(1, tile_j, l), 1);
        assert_eq!(simd_tile_count(1, tile_j + 1, l), 2);
    }

    #[test]
    fn simd_tile_count_equals_walk_length() {
        // The closed form must agree with the tile sequence the hot
        // loop actually iterates, across boundary-straddling shapes and
        // window lengths (including extremes that hit both clamps).
        let tile_j_60 = simd_tile_j(60);
        for l in [1, 4, 16, 60, 200, TILE_J_BYTES, TILE_J_BYTES * 2] {
            for n0 in [0, 1, TILE_I - 1, TILE_I, TILE_I + 1, 3 * TILE_I + 5] {
                for n1 in [0, 1, tile_j_60 - 1, tile_j_60, tile_j_60 + 1, 70_000] {
                    let walked = simd_tile_walk(n0, n1, l).count() as u64;
                    assert_eq!(simd_tile_count(n0, n1, l), walked, "n0={n0} n1={n1} l={l}");
                }
            }
        }
        // Walked tiles cover the rectangle exactly once, in order.
        let (n0, n1, l) = (TILE_I + 3, tile_j_60 + 9, 60);
        let mut covered = vec![false; n0 * n1];
        for (ti, tj) in simd_tile_walk(n0, n1, l) {
            for i in ti {
                for j in tj.clone() {
                    assert!(!covered[i * n1 + j], "tile overlap at ({i},{j})");
                    covered[i * n1 + j] = true;
                }
            }
        }
        assert!(covered.iter().all(|&c| c), "walk left cells uncovered");
    }

    #[test]
    fn disjoint_banks_no_pairs() {
        let (f0, i0, f1, i1) = setup(&[b"MKVLMKVLMKVL"], &[b"GGGGGGGGGGGG"]);
        let m = blosum62();
        let (cands, stats) = run_software(&f0, &i0, &f1, &i1, &params(m, 1), 1);
        assert!(cands.is_empty());
        assert_eq!(stats.pairs, 0);
        assert_eq!(stats.active_keys, 0);
    }

    #[test]
    fn gather_windows_layout() {
        let (f0, i0, _, _) = setup(&[b"MKVLAWRNDCQEHFYW"], &[b"MKVLAWRNDCQEHFYW"]);
        let key = i0.nonempty_keys().next().unwrap();
        let list = i0.list(key);
        let mut buf = Vec::new();
        gather_windows(&f0, list, 4, 6, &mut buf);
        assert_eq!(buf.len(), list.len() * 16);
        // Each window must equal the direct extraction.
        for (i, &pos) in list.iter().enumerate() {
            assert_eq!(&buf[i * 16..(i + 1) * 16], f0.window(pos, 4, 6).as_slice());
        }
    }
}
