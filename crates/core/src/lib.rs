//! # psc-core — the paper's seed-based bank-vs-bank comparison pipeline
//!
//! This crate is the primary contribution of the reproduced paper: a
//! BLAST-heuristic protein comparison that — unlike NCBI BLAST's
//! one-query-against-a-bank scan — treats **both** data sets as indexed
//! banks, which concentrates the dominant cost into a small, regular
//! critical section that parallel hardware can absorb. Three steps
//! (paper §2.1):
//!
//! 1. **Indexing** — both banks are indexed under one seed model
//!    (`psc-index`), giving, for every seed key `k`, index lists `IL0_k`
//!    and `IL1_k` of window positions;
//! 2. **Ungapped extension** — for every key, all `|IL0_k| × |IL1_k|`
//!    window pairs are scored with the fixed-window kernel; pairs at or
//!    above a threshold survive. This step runs on a pluggable
//!    [`Step2Backend`]: scalar software, multithreaded software, or the
//!    simulated RASC-100 board (`psc-rasc`);
//! 3. **Gapped extension** — surviving pairs are deduplicated per
//!    diagonal and extended with affine-gap X-drop DP (`psc-align`),
//!    E-value filtered, culled and reported.
//!
//! [`search_genome`] wraps the pipeline for the paper's actual workload:
//! a protein bank against the six-frame translation of a genome, with
//! results mapped back to genomic coordinates.

#![forbid(unsafe_code)]

pub mod config;
pub mod engine;
pub mod genome;
pub mod gff;
pub mod pipeline;
pub mod profile;
pub mod report;
pub mod step2;

pub use config::{PipelineConfig, SeedChoice, Step2Backend};
pub use engine::{EngineError, SearchEngine};
pub use genome::{
    search_genome, search_genome_recorded, try_search_genome, try_search_genome_recorded,
    try_search_genome_traced, GenomeMatch, GenomeSearchResult,
};
pub use gff::to_gff3;
pub use pipeline::{
    shard_critical_path, Pipeline, PipelineError, PipelineOutput, PipelineStats, PreparedBank,
};
pub use profile::StepProfile;
pub use psc_align::{KernelBackend, KernelChoice};
pub use psc_telemetry::{
    MemRecorder, NullRecorder, NullTracer, Recorder, RingTracer, RunReport, TraceClock, Tracer,
};
pub use report::build_run_report;
pub use step2::Step2Schedule;
