//! The three-step pipeline driver.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use crossbeam::{channel, thread};
use psc_align::{cull_hsps, gapped_extend, GapConfig, GappedHit, Hsp};
use psc_index::{FlatBank, SeedIndex};
use psc_rasc::{BoardReport, Entry, FleetReport, RascBoard, RascFleet};
use psc_score::karlin::{gapped_params, ungapped_params};
use psc_score::{SubstitutionMatrix, ROBINSON_FREQS};
use psc_seqio::Bank;

use psc_telemetry::{
    keys, NullRecorder, NullTracer, Recorder, SpanGuard, TraceClock, Tracer, UnitEvent, UnitTrace,
};

use crate::config::{PipelineConfig, Step2Backend, Step3Backend};
use crate::profile::StepProfile;
use crate::step2::{self, Candidate, ItemTiming, Step2Params, Step2Stats};

/// Instrumentation of a pipeline run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Positions indexed in each bank.
    pub indexed0: usize,
    pub indexed1: usize,
    /// Step-2 counters.
    pub step2: Step2Stats,
    /// Gapped-extension anchors after per-diagonal deduplication.
    pub anchors: u64,
    /// HSPs surviving E-value filtering and culling.
    pub reported: usize,
}

/// Everything a run produces.
#[derive(Clone, Debug)]
pub struct PipelineOutput {
    /// Final alignments, best E-value first. `seq0` indexes bank 0,
    /// `seq1` indexes bank 1.
    pub hsps: Vec<Hsp>,
    pub profile: StepProfile,
    pub stats: PipelineStats,
    /// Present when step 2 ran on the simulated RASC board. For a
    /// fleet run this is the fleet-wide aggregate
    /// ([`FleetReport::aggregate`]).
    pub board: Option<BoardReport>,
    /// Present when step 2 ran on a multi-board fleet
    /// (`PipelineConfig::fleet.boards >= 2` with the RASC backend).
    pub fleet: Option<FleetReport>,
}

/// Why a pipeline run could not start or complete. All variants but
/// [`PipelineError::BoardFault`] are configuration problems detectable
/// before any sequence is touched; `BoardFault` is the one runtime
/// failure, surfaced only after the board's own retry/degradation
/// recovery is exhausted.
#[derive(Clone, Debug, PartialEq)]
pub enum PipelineError {
    /// The PSC operator (step 2) exceeds the FPGA resource budget.
    OperatorDoesNotFit(psc_rasc::ResourceError),
    /// The gapped operator (step 3) exceeds the FPGA resource budget.
    GappedOperatorDoesNotFit(psc_rasc::ResourceError),
    /// `fpga_share` of the hybrid backend is outside `0..=1`.
    InvalidFpgaShare(f64),
    /// The substitution matrix has no valid Karlin–Altschul parameters
    /// (its expected score is non-negative, so local alignment
    /// statistics are undefined).
    UnsupportedMatrix,
    /// A board entry kept faulting past the retry budget with
    /// degradation disabled (see [`psc_rasc::RecoveryPolicy`]).
    BoardFault(psc_rasc::BoardFault),
}

impl std::fmt::Display for PipelineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PipelineError::OperatorDoesNotFit(e) => {
                write!(f, "step-2 operator does not fit the FPGA: {e}")
            }
            PipelineError::GappedOperatorDoesNotFit(e) => {
                write!(f, "step-3 gapped operator does not fit the FPGA: {e}")
            }
            PipelineError::InvalidFpgaShare(s) => {
                write!(f, "fpga_share must be in 0..=1, got {s}")
            }
            PipelineError::UnsupportedMatrix => {
                write!(f, "matrix does not support local alignment statistics")
            }
            PipelineError::BoardFault(e) => {
                write!(f, "step-2 board fault exhausted recovery: {e}")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

/// The paper's bank-vs-bank comparison pipeline.
#[derive(Debug)]
pub struct Pipeline {
    config: PipelineConfig,
}

impl Pipeline {
    pub fn new(config: PipelineConfig) -> Pipeline {
        Pipeline { config }
    }

    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Compare two protein banks.
    ///
    /// Panics on configuration errors; use [`Pipeline::try_run`] to
    /// handle them.
    pub fn run(&self, bank0: &Bank, bank1: &Bank, matrix: &SubstitutionMatrix) -> PipelineOutput {
        self.run_recorded(bank0, bank1, matrix, &NullRecorder)
    }

    /// Compare two protein banks, surfacing configuration errors.
    pub fn try_run(
        &self,
        bank0: &Bank,
        bank1: &Bank,
        matrix: &SubstitutionMatrix,
    ) -> Result<PipelineOutput, PipelineError> {
        self.try_run_recorded(bank0, bank1, matrix, &NullRecorder)
    }

    /// Compare two protein banks, recording telemetry into `rec`.
    ///
    /// Panics on configuration errors; use
    /// [`Pipeline::try_run_recorded`] to handle them.
    pub fn run_recorded(
        &self,
        bank0: &Bank,
        bank1: &Bank,
        matrix: &SubstitutionMatrix,
        rec: &dyn Recorder,
    ) -> PipelineOutput {
        self.try_run_recorded(bank0, bank1, matrix, rec)
            .unwrap_or_else(|e| panic!("pipeline configuration error: {e}"))
    }

    /// Compare two protein banks, recording telemetry into `rec`.
    ///
    /// With a [`NullRecorder`] this is exactly [`Pipeline::try_run`]:
    /// the per-item instrumentation (per-key histograms, per-anchor
    /// accounting) is gated on [`Recorder::enabled`] or computed outside
    /// the step-2 hot loop, and candidate/HSP output is bit-identical
    /// either way.
    pub fn try_run_recorded(
        &self,
        bank0: &Bank,
        bank1: &Bank,
        matrix: &SubstitutionMatrix,
        rec: &dyn Recorder,
    ) -> Result<PipelineOutput, PipelineError> {
        self.try_run_traced(bank0, bank1, matrix, rec, &NullTracer)
    }

    /// [`Pipeline::try_run_recorded`] with a flight recorder attached.
    ///
    /// The tracer follows the recorder's off-hot-loop discipline: the
    /// step-2/step-3 kernels only ever collect plain timing numbers
    /// (and only when the tracer is enabled); every [`UnitTrace`] is
    /// committed from the driver after the unit completes. Candidate,
    /// HSP, stats and report output are bit-identical with tracing on
    /// or off, under any fault plan, with or without `--overlap`.
    ///
    /// Under [`TraceClock::Wall`] host lanes carry measured timings and
    /// the overlap channel is instrumented; under [`TraceClock::Virtual`]
    /// host units are emitted as deterministic scheduled work (weights
    /// from pair mass / anchor counts) so the whole trace is
    /// byte-identical across thread counts. Simulated board lanes are
    /// cycle-derived and deterministic under both clocks.
    pub fn try_run_traced(
        &self,
        bank0: &Bank,
        bank1: &Bank,
        matrix: &SubstitutionMatrix,
        rec: &dyn Recorder,
        tracer: &dyn Tracer,
    ) -> Result<PipelineOutput, PipelineError> {
        let prep0 = self.prepare_bank(0, bank0, rec);
        let prep1 = self.prepare_bank(1, bank1, rec);
        self.try_run_prepared_traced(bank0, &prep0, bank1, &prep1, matrix, rec, tracer)
    }

    /// Step 1 for one bank (`which` = 0 or 1): apply the soft mask,
    /// flatten, and build the seed index. The result is the immutable,
    /// shareable half of a run — build it once (or load it from an
    /// index bundle) and feed any number of
    /// [`Pipeline::try_run_prepared_traced`] calls.
    pub fn prepare_bank(&self, which: usize, bank: &Bank, rec: &dyn Recorder) -> PreparedBank {
        let cfg = &self.config;
        let model = cfg.seed.model();
        // analyzer: allow(determinism) -- wall-clock step profile is the audited exception
        let t0 = Instant::now();
        let flat = seeding_flat(&cfg.mask, bank);
        let idx = {
            let key = if which == 0 {
                keys::STEP1_INDEX_BANK0
            } else {
                keys::STEP1_INDEX_BANK1
            };
            let _g = SpanGuard::enter(rec, key);
            SeedIndex::build(&flat, model.as_ref(), cfg.index_threads)
        };
        PreparedBank {
            flat,
            idx,
            prep_seconds: t0.elapsed().as_secs_f64(),
        }
    }

    /// Steps 2 and 3 over banks prepared by [`Pipeline::prepare_bank`]
    /// (or loaded from an index bundle) — the per-query half of a run.
    /// `bank0`/`bank1` must be the *original* (unmasked) banks the
    /// prepared state was built from; step 3 extends over them.
    ///
    /// [`Pipeline::try_run_traced`] is exactly `prepare_bank` twice
    /// followed by this, so a query against persisted pipeline state is
    /// bit-identical to a one-shot run by construction.
    #[allow(clippy::too_many_arguments)]
    pub fn try_run_prepared_traced(
        &self,
        bank0: &Bank,
        prep0: &PreparedBank,
        bank1: &Bank,
        prep1: &PreparedBank,
        matrix: &SubstitutionMatrix,
        rec: &dyn Recorder,
        tracer: &dyn Tracer,
    ) -> Result<PipelineOutput, PipelineError> {
        let cfg = &self.config;
        let span = cfg.seed.model().span();
        let (flat0, idx0) = (&prep0.flat, &prep0.idx);
        let (flat1, idx1) = (&prep1.flat, &prep1.idx);
        let step1 = prep0.prep_seconds + prep1.prep_seconds;
        rec.add(
            keys::STEP1_POSITIONS_INDEXED_BANK0,
            idx0.total_positions() as u64,
        );
        rec.add(
            keys::STEP1_POSITIONS_INDEXED_BANK1,
            idx1.total_positions() as u64,
        );

        // ---- Step 2: ungapped extension ----------------------------
        // analyzer: allow(determinism) -- wall-clock step profile is the audited exception
        let t1 = Instant::now();
        let params = Step2Params {
            matrix,
            kernel: cfg.kernel,
            span,
            n_ctx: cfg.n_ctx,
            threshold: cfg.threshold,
            kernel_backend: cfg.step2_kernel,
            schedule: cfg.step2_schedule,
        };
        let key_count = idx0.key_count() as u32;
        let mut dedup = AnchorDedup::new(flat0, flat1, cfg.min_anchor_sep);
        // Virtual-clock traces model step 2 as its deterministic work
        // items, independent of backend, schedule and thread count.
        if tracer.enabled() && tracer.clock() == TraceClock::Virtual {
            commit_virtual_step2(tracer, idx0, idx1, key_count);
        }
        let (mut s2stats, board, fleet, step2_accel_override) = if cfg.overlap {
            run_step2_overlapped(
                cfg, &params, flat0, idx0, flat1, idx1, span, key_count, matrix, &mut dedup, tracer,
            )?
        } else {
            let (candidates, s2stats, board, fleet, step2_accel_override) = run_step2_barrier(
                cfg, &params, flat0, idx0, flat1, idx1, span, key_count, matrix, tracer,
            )?;
            for c in &candidates {
                dedup.push(c);
            }
            (s2stats, board, fleet, step2_accel_override)
        };
        // A fleet run reports through the same single-board shape: the
        // aggregate sums every board. Its timeline lives on the fleet
        // report (per-board lanes), so `commit_board_timeline` below is
        // a no-op for it.
        let board = board.or_else(|| fleet.as_ref().map(|f| f.aggregate.clone()));
        if let Some(b) = board.as_ref().filter(|_| tracer.enabled()) {
            commit_board_timeline(tracer, b);
        }
        if let Some(f) = fleet.as_ref().filter(|_| tracer.enabled()) {
            commit_fleet_timeline(tracer, f);
        }
        // Both modes push the same candidate multiset; the pushed count
        // is the one `candidates` counter.
        s2stats.candidates = dedup.pushed();
        let step2_wall = t1.elapsed().as_secs_f64();
        let step2_accelerated =
            step2_accel_override.or_else(|| board.as_ref().map(|r| r.accelerated_seconds));
        // Which software kernel scored step 2 (the pure-board backend
        // never touches the software kernels), plus why `resolve` had to
        // back off the requested choice, if it did.
        let (resolved_kernel, kernel_downgrade) = cfg
            .step2_kernel
            .resolve_with_reason(params.window_len(), matrix);
        let step2_kernel = match &cfg.backend {
            Step2Backend::Rasc { .. } => None,
            _ => Some(resolved_kernel),
        };

        // Step-2 telemetry, all computed off the hot loop: counters from
        // the stats the run produced anyway, and an O(key-count) pass
        // over the indexes for the per-key pair distribution and the
        // SIMD tile count — never taken with a disabled recorder.
        rec.add(keys::STEP2_PAIRS, s2stats.pairs);
        rec.add(keys::STEP2_CANDIDATES_KEPT, s2stats.candidates);
        rec.add(
            keys::STEP2_CANDIDATES_CULLED,
            s2stats.pairs - s2stats.candidates,
        );
        rec.add(keys::STEP2_ACTIVE_KEYS, s2stats.active_keys);
        if let Some(b) = board.as_ref().filter(|b| b.faults.any()) {
            rec.add(keys::STEP2_FAULTS_DETECTED, b.faults.faults_detected);
            rec.add(keys::STEP2_FAULT_RETRIES, b.faults.retries);
            rec.add(keys::STEP2_ENTRIES_DEGRADED, b.faults.entries_degraded);
        }
        if let Some(f) = fleet.as_ref() {
            rec.add(keys::FLEET_BOARDS, f.boards as u64);
            rec.add(keys::FLEET_STEALS, f.steals);
            rec.add(keys::FLEET_QUARANTINED, f.quarantined.len() as u64);
            rec.add(keys::FLEET_REDISPATCHED, f.redispatched);
            for b in 0..f.boards {
                rec.add(
                    &keys::fleet_board_occupancy(b),
                    (f.occupancy(b) * 100.0).round() as u64,
                );
            }
            // The modeled cluster-speedup ladder: the same dispatch
            // schedule replayed at each fleet size; the entry at the
            // actual board count equals the run's makespan.
            for &(n, makespan) in &f.modeled {
                rec.record_span(&keys::fleet_modeled_boards(n), makespan);
            }
        }
        if rec.enabled() {
            rec.set_meta(keys::BACKEND, cfg.backend.name());
            rec.set_meta(keys::STEP3_BACKEND, cfg.step3_backend.name());
            rec.set_meta(keys::STEP2_SCHEDULE, params.schedule.name());
            if let Some(k) = step2_kernel {
                rec.set_meta(keys::STEP2_KERNEL, k.name());
                rec.set_meta(
                    keys::STEP2_KERNEL_REQUESTED,
                    &format!("{:?}", cfg.step2_kernel).to_lowercase(),
                );
                if let Some(reason) = kernel_downgrade {
                    rec.set_meta(keys::STEP2_KERNEL_DOWNGRADE, reason);
                }
            }
            rec.set_meta(keys::WINDOW_LEN, &cfg.window_len().to_string());
            rec.set_meta(keys::THRESHOLD, &cfg.threshold.to_string());
            let mut lane_tiles = 0u64;
            let (mut slots_useful, mut slots_total) = (0u64, 0u64);
            for key in 0..key_count {
                let (n0, n1) = (idx0.list(key).len(), idx1.list(key).len());
                if n0 == 0 || n1 == 0 {
                    continue;
                }
                let mass = n0 as u64 * n1 as u64;
                rec.observe(keys::STEP2_PAIRS_PER_KEY, mass);
                let Some(kb) = step2_kernel else { continue };
                lane_tiles +=
                    step2::rectangle_tile_count(n0, n1, params.window_len(), kb, params.schedule);
                let (useful, total) = step2::rectangle_lane_slots(n0, n1, kb, params.schedule);
                if kb.lane_width() > 1 && total > 0 {
                    // Percent of vector slots doing useful work for this
                    // key, and the same accounting split by log2 pair-mass
                    // bucket — the heavy-tail keys the bucketed schedule
                    // exists to balance are the high buckets.
                    rec.observe(keys::STEP2_LANE_FILL, useful * 100 / total);
                    slots_useful += useful;
                    slots_total += total;
                    let b = step2::bucket_of_mass(mass);
                    rec.add(&keys::step2_lane_slots_useful_bucket(b), useful);
                    rec.add(&keys::step2_lane_slots_total_bucket(b), total);
                }
            }
            if step2_kernel.is_some_and(|k| k.lane_width() > 1) {
                rec.add(keys::STEP2_SIMD_TILES, lane_tiles);
                rec.add(keys::STEP2_LANE_SLOTS_USEFUL, slots_useful);
                rec.add(keys::STEP2_LANE_SLOTS_TOTAL, slots_total);
            }
        }

        // ---- Step 3: gapped extension ------------------------------
        // analyzer: allow(determinism) -- wall-clock step profile is the audited exception
        let t2 = Instant::now();
        let ungapped_stats =
            ungapped_params(matrix, &ROBINSON_FREQS).ok_or(PipelineError::UnsupportedMatrix)?;
        let stats = gapped_params(matrix, cfg.gap.open, cfg.gap.extend).unwrap_or(ungapped_stats);
        let (m, n) = (bank0.total_residues(), bank1.total_residues());

        let anchors = dedup.finish();
        // Optional step-3 accelerator (the paper's proposed second-FPGA
        // gapped operator). Results are identical either way; the
        // operator additionally accounts simulated cycles.
        let gapped_op = match cfg.step3_backend {
            Step3Backend::Software => None,
            Step3Backend::RascGapped { band } => {
                let op_cfg = psc_rasc::GappedOperatorConfig {
                    band,
                    gap: cfg.gap,
                    ..psc_rasc::GappedOperatorConfig::default()
                };
                Some(
                    psc_rasc::GappedOperator::new(op_cfg, matrix)
                        .map_err(PipelineError::GappedOperatorDoesNotFit)?,
                )
            }
        };
        // Extension runs on `step3_threads` workers over fixed-size
        // shards; the merge below walks anchors in order, so counters
        // and HSP output cannot depend on the thread count.
        let trace_wall = tracer.enabled() && tracer.clock() == TraceClock::Wall;
        let (extensions, shard_seconds, shard_lanes) = extend_anchors(
            matrix,
            bank0,
            bank1,
            &cfg.gap,
            gapped_op.as_ref(),
            &anchors,
            cfg.step3_threads,
            if trace_wall { Some(tracer) } else { None },
        );
        // Machine-independent view of the shard schedule: the sum of
        // per-shard costs is the sequential extension time, and the
        // greedy critical path over `step3_threads` workers is what a
        // host with that many free cores would observe. Both are wall
        // clock and stripped with the other spans.
        let extension_seconds: f64 = shard_seconds.iter().sum();
        let modeled_parallel = shard_critical_path(&shard_seconds, cfg.step3_threads);
        if trace_wall {
            // Span durations reuse the exact `shard_seconds` values so
            // the trace reconciles against the `step3.extension` report
            // span without measurement skew.
            for sl in &shard_lanes {
                let size = STEP3_SHARD.min(anchors.len() - sl.shard * STEP3_SHARD) as u64;
                tracer.commit(UnitTrace {
                    stage: keys::STAGE_STEP3.to_string(),
                    index: sl.shard as u64,
                    lane: sl.worker,
                    start_seconds: Some(sl.start_seconds),
                    sim_clock: false,
                    events: vec![
                        UnitEvent::span(keys::EV_EXTEND, shard_seconds[sl.shard], size.max(1)),
                        UnitEvent::mark(keys::EV_ANCHORS, size),
                    ],
                });
            }
        } else if tracer.enabled() {
            commit_virtual_step3(tracer, anchors.len());
        }
        let merge_start = tracer.epoch_seconds();
        // analyzer: allow(determinism) -- wall-clock step profile is the audited exception
        let t_merge = Instant::now();
        let mut step3_cycles = 0u64;
        let mut hsps = Vec::new();
        // Step-3 accounting: an extension flank "X-drop terminated" when
        // the DP gave up strictly inside both sequences (as opposed to
        // running into a sequence end).
        let mut xdrop_terminations = 0u64;
        let mut evalue_rejected = 0u64;
        for (a, &(hit, cycles)) in anchors.iter().zip(&extensions) {
            let s0 = &bank0.get(a.seq0 as usize).residues;
            let s1 = &bank1.get(a.seq1 as usize).residues;
            step3_cycles += cycles;
            if hit.start0 > 0 && hit.start1 > 0 {
                xdrop_terminations += 1;
            }
            if hit.end0 < s0.len() && hit.end1 < s1.len() {
                xdrop_terminations += 1;
            }
            let evalue = stats.evalue(hit.score, m, n);
            if evalue > cfg.max_evalue {
                evalue_rejected += 1;
            }
            if evalue <= cfg.max_evalue {
                hsps.push(Hsp {
                    seq0: a.seq0,
                    seq1: a.seq1,
                    start0: hit.start0 as u32,
                    end0: hit.end0 as u32,
                    start1: hit.start1 as u32,
                    end1: hit.end1 as u32,
                    score: hit.score,
                    bit_score: stats.bit_score(hit.score),
                    evalue,
                });
            }
        }
        let merge_wait = t_merge.elapsed().as_secs_f64();
        if trace_wall {
            tracer.commit(UnitTrace {
                stage: keys::STAGE_STEP3_MERGE.to_string(),
                index: 0,
                lane: 0,
                start_seconds: Some(merge_start),
                sim_clock: false,
                events: vec![
                    UnitEvent::span(keys::EV_MERGE_WAIT, merge_wait, 1),
                    UnitEvent::mark(keys::EV_ANCHORS, anchors.len() as u64),
                ],
            });
        }
        let mut hsps = cull_hsps(hsps, 0.9);
        hsps.sort_by(|a, b| a.evalue.total_cmp(&b.evalue));
        let step3 = t2.elapsed().as_secs_f64();

        rec.add(keys::STEP3_ANCHORS, anchors.len() as u64);
        rec.add(
            keys::STEP3_SHARDS,
            anchors.len().div_ceil(STEP3_SHARD) as u64,
        );
        rec.add(keys::STEP3_XDROP_TERMINATIONS, xdrop_terminations);
        rec.add(keys::STEP3_EVALUE_REJECTED, evalue_rejected);
        rec.add(keys::STEP3_HSPS_REPORTED, hsps.len() as u64);
        rec.record_span(keys::STEP1, step1);
        rec.record_span(keys::STEP2_WALL, step2_wall);
        rec.record_span(keys::STEP3, step3);
        rec.record_span(keys::STEP3_EXTENSION, extension_seconds);
        rec.record_span(keys::STEP3_MODELED_PARALLEL, modeled_parallel);
        // Fixed ladder so an uncontended run reports what wider hosts
        // would see; only meaningful when this run was sequential (a
        // contended run's shard costs already include descheduling).
        for workers in [2usize, 4, 8] {
            rec.record_span(
                &keys::step3_modeled_workers(workers),
                shard_critical_path(&shard_seconds, workers),
            );
        }
        rec.record_span(keys::STEP3_MERGE_WAIT, merge_wait);

        Ok(PipelineOutput {
            stats: PipelineStats {
                indexed0: idx0.total_positions(),
                indexed1: idx1.total_positions(),
                step2: s2stats,
                anchors: anchors.len() as u64,
                reported: hsps.len(),
            },
            hsps,
            profile: StepProfile {
                step1,
                step2_wall,
                step2_kernel,
                step2_accelerated,
                step3,
                step3_accelerated: gapped_op
                    .as_ref()
                    .map(|op| step3_cycles as f64 / op.config().clock_hz as f64),
            },
            board,
            fleet,
        })
    }
}

/// The seeding/step-2 view of a bank: entropy soft-masked when masking
/// is configured (step 3 extends over the original residues),
/// flattened to global `u32` coordinates.
pub(crate) fn seeding_flat(mask: &Option<psc_seqio::MaskConfig>, bank: &Bank) -> FlatBank {
    match mask {
        None => FlatBank::from_bank(bank),
        Some(mask_cfg) => {
            let masked: Bank = bank
                .seqs()
                .iter()
                .map(|s| {
                    psc_seqio::Seq::from_codes(
                        s.id.clone(),
                        psc_seqio::mask_low_complexity(&s.residues, mask_cfg),
                        s.kind,
                    )
                })
                .collect();
            FlatBank::from_bank(&masked)
        }
    }
}

/// Step-1 output for one bank: the seeding-view flat bank plus its
/// seed index — the pipeline state a server shares across queries,
/// as opposed to the per-query state steps 2 and 3 build and discard.
///
/// Produced by [`Pipeline::prepare_bank`], or assembled from a
/// persisted index bundle via [`PreparedBank::from_parts`].
#[derive(Clone, Debug)]
pub struct PreparedBank {
    flat: FlatBank,
    idx: SeedIndex,
    /// Wall seconds step 1 spent building this bank's state (zero when
    /// loaded from an artifact — that is the amortization).
    prep_seconds: f64,
}

impl PreparedBank {
    /// Assemble from an already-built flat bank and index (artifact
    /// load). `prep_seconds` is zero: the build was paid elsewhere.
    pub fn from_parts(flat: FlatBank, idx: SeedIndex) -> PreparedBank {
        PreparedBank {
            flat,
            idx,
            prep_seconds: 0.0,
        }
    }

    /// The seeding-view flat bank.
    pub fn flat(&self) -> &FlatBank {
        &self.flat
    }

    /// The seed index over [`PreparedBank::flat`].
    pub fn index(&self) -> &SeedIndex {
        &self.idx
    }

    /// Wall seconds step 1 spent on this bank (zero for artifact loads).
    pub fn prep_seconds(&self) -> f64 {
        self.prep_seconds
    }
}

/// An anchor for gapped extension, in sequence-local coordinates.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Anchor {
    seq0: u32,
    seq1: u32,
    local0: u32,
    local1: u32,
}

/// A localized step-2 candidate, the bucket payload of [`AnchorDedup`].
#[derive(Clone, Copy)]
struct Localized {
    local0: u32,
    local1: u32,
    score: i32,
}

/// Incremental, order-invariant anchor deduplication.
///
/// Candidates are bucketed by `(seq0, seq1, diagonal)` as they arrive —
/// in *any* order, because overlapped step 2 delivers them in entry
/// completion order rather than position order. [`AnchorDedup::finish`]
/// sorts each bucket by `local1` and folds runs closer than `min_sep`
/// subject residues, keeping the best-scoring member of each fold
/// group. `(seq0, seq1, diag, local1)` uniquely identifies a candidate
/// (the diagonal fixes `local0`, the flat position fixes the score), so
/// the per-bucket sort is a total order and the output is identical to
/// the historical sort-everything-then-fold pass no matter how pushes
/// interleave — the property the overlap-equivalence tests pin.
struct AnchorDedup<'a> {
    flat0: &'a FlatBank,
    flat1: &'a FlatBank,
    min_sep: u32,
    pushed: u64,
    buckets: BTreeMap<(u32, u32, i64), Vec<Localized>>,
}

impl<'a> AnchorDedup<'a> {
    fn new(flat0: &'a FlatBank, flat1: &'a FlatBank, min_sep: u32) -> AnchorDedup<'a> {
        AnchorDedup {
            flat0,
            flat1,
            min_sep,
            pushed: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// Localize one candidate and file it under its diagonal line.
    fn push(&mut self, c: &Candidate) {
        let (s0, l0) = self.flat0.locate(c.pos0);
        let (s1, l1) = self.flat1.locate(c.pos1);
        self.pushed += 1;
        self.buckets
            .entry((s0 as u32, s1 as u32, l1 as i64 - l0 as i64))
            .or_default()
            .push(Localized {
                local0: l0 as u32,
                local1: l1 as u32,
                score: c.score,
            });
    }

    /// Number of candidates pushed so far.
    fn pushed(&self) -> u64 {
        self.pushed
    }

    /// Fold every bucket into anchors, in `(seq0, seq1, diag, local1)`
    /// order.
    fn finish(self) -> Vec<Anchor> {
        let mut anchors: Vec<Anchor> = Vec::new();
        for ((seq0, seq1, _diag), mut bucket) in self.buckets {
            bucket.sort_unstable_by_key(|c| c.local1);
            let mut members = bucket.into_iter();
            let Some(first) = members.next() else {
                continue;
            };
            // The fold window chains: each member extends the group when
            // it lands within `min_sep` of the *previous* member.
            let mut last1 = first.local1;
            let mut best = first;
            for c in members {
                if c.local1 < last1 + self.min_sep {
                    last1 = c.local1;
                    if c.score > best.score {
                        best = c;
                    }
                } else {
                    anchors.push(Anchor {
                        seq0,
                        seq1,
                        local0: best.local0,
                        local1: best.local1,
                    });
                    last1 = c.local1;
                    best = c;
                }
            }
            anchors.push(Anchor {
                seq0,
                seq1,
                local0: best.local0,
                local1: best.local1,
            });
        }
        anchors
    }
}

/// Anchors per step-3 work shard. Fixed (not derived from the thread
/// count) so shard boundaries — and the `step3.shards` telemetry — are
/// identical no matter how many workers run.
const STEP3_SHARD: usize = 64;

/// Extend every anchor, in anchor order. With `threads > 1` the anchors
/// are cut into [`STEP3_SHARD`]-sized shards pulled by workers off a
/// shared counter; results are reassembled by shard index, so the
/// returned `(hit, simulated_cycles)` vector is bit-identical to the
/// sequential loop at any thread count. The gapped operator has no
/// interior mutability, so one instance serves all workers and the
/// per-anchor cycle counts sum to the same total in any order.
///
/// The second return value is the wall seconds each shard spent in
/// extension, indexed by shard. It feeds the `step3.extension` /
/// `step3.modeled_parallel` spans; results never depend on it.
///
/// When a wall-clock `tracer` is attached, the third return value maps
/// each shard to the worker that ran it and its start offset on the
/// tracer's epoch (empty otherwise); the caller commits the spans.
#[allow(clippy::too_many_arguments)]
fn extend_anchors(
    matrix: &SubstitutionMatrix,
    bank0: &Bank,
    bank1: &Bank,
    gap: &GapConfig,
    gapped_op: Option<&psc_rasc::GappedOperator>,
    anchors: &[Anchor],
    threads: usize,
    tracer: Option<&dyn Tracer>,
) -> (Vec<(GappedHit, u64)>, Vec<f64>, Vec<ShardLane>) {
    let extend_one = |a: &Anchor| -> (GappedHit, u64) {
        let s0 = &bank0.get(a.seq0 as usize).residues;
        let s1 = &bank1.get(a.seq1 as usize).residues;
        match gapped_op {
            None => (
                gapped_extend(matrix, s0, s1, a.local0 as usize, a.local1 as usize, gap),
                0,
            ),
            Some(op) => {
                let (hit, cycles, _overflow) =
                    op.extend(s0, s1, a.local0 as usize, a.local1 as usize);
                (hit, cycles)
            }
        }
    };
    let shard_count = anchors.len().div_ceil(STEP3_SHARD);
    let threads = threads.max(1);
    if threads == 1 || anchors.len() <= STEP3_SHARD {
        let mut out = Vec::with_capacity(anchors.len());
        let mut shard_seconds = Vec::with_capacity(shard_count);
        let mut lanes = Vec::new();
        for (i, shard) in anchors.chunks(STEP3_SHARD).enumerate() {
            if let Some(tr) = tracer {
                lanes.push(ShardLane {
                    shard: i,
                    worker: 0,
                    start_seconds: tr.epoch_seconds(),
                });
            }
            // analyzer: allow(determinism) -- span telemetry only, never results
            let t0 = Instant::now();
            out.extend(shard.iter().map(extend_one));
            shard_seconds.push(t0.elapsed().as_secs_f64());
        }
        return (out, shard_seconds, lanes);
    }
    // (shard index, extended hits, shard wall seconds) from one worker.
    type ShardResult = (usize, Vec<(GappedHit, u64)>, f64);
    let next = AtomicUsize::new(0);
    let mut sharded: Vec<ShardResult> = Vec::with_capacity(shard_count);
    let mut lanes: Vec<ShardLane> = Vec::new();
    thread::scope(|s| {
        let handles: Vec<_> = (0..threads.min(shard_count))
            .map(|w| {
                let (next, extend_one) = (&next, &extend_one);
                s.spawn(move |_| {
                    let mut local: Vec<ShardResult> = Vec::new();
                    let mut my_lanes: Vec<ShardLane> = Vec::new();
                    loop {
                        let shard = next.fetch_add(1, Ordering::Relaxed);
                        if shard >= shard_count {
                            break;
                        }
                        let lo = shard * STEP3_SHARD;
                        let hi = (lo + STEP3_SHARD).min(anchors.len());
                        if let Some(tr) = tracer {
                            my_lanes.push(ShardLane {
                                shard,
                                worker: w as u32,
                                start_seconds: tr.epoch_seconds(),
                            });
                        }
                        // analyzer: allow(determinism) -- span telemetry only, never results
                        let t0 = Instant::now();
                        let hits: Vec<_> = anchors[lo..hi].iter().map(extend_one).collect();
                        local.push((shard, hits, t0.elapsed().as_secs_f64()));
                    }
                    (local, my_lanes)
                })
            })
            .collect();
        for h in handles {
            let (local, my_lanes) = h.join().expect("step-3 worker panicked");
            sharded.extend(local);
            lanes.extend(my_lanes);
        }
    })
    .expect("step-3 scope");
    sharded.sort_unstable_by_key(|&(shard, _, _)| shard);
    lanes.sort_unstable_by_key(|l| l.shard);
    let shard_seconds = sharded.iter().map(|&(_, _, s)| s).collect();
    (
        sharded.into_iter().flat_map(|(_, v, _)| v).collect(),
        shard_seconds,
        lanes,
    )
}

/// Which worker ran a step-3 shard and when it started, on the
/// tracer's epoch — the pinning info for one `step3` trace span.
struct ShardLane {
    shard: usize,
    worker: u32,
    start_seconds: f64,
}

/// Finish time of the shard-pull schedule on `workers` free cores: each
/// worker takes the next shard the moment it goes idle — exactly the
/// atomic-counter discipline [`extend_anchors`] runs. With measured
/// per-shard costs this models the step-3 extension wall a host with
/// that many cores would see, independent of how many this host has.
/// The same pull discipline drives the bucketed step-2 scheduler, so
/// `experiments step2-balance` replays per-item costs through it too.
pub fn shard_critical_path(shard_seconds: &[f64], workers: usize) -> f64 {
    let workers = workers.max(1);
    if workers == 1 || shard_seconds.len() <= 1 {
        return shard_seconds.iter().sum();
    }
    let mut finish = vec![0.0f64; workers.min(shard_seconds.len())];
    for &cost in shard_seconds {
        let idlest = (0..finish.len())
            .min_by(|&a, &b| finish[a].total_cmp(&finish[b]))
            .expect("at least one worker");
        finish[idlest] += cost;
    }
    finish.iter().fold(0.0f64, |acc, &t| acc.max(t))
}

/// Batches in flight between step-2 producers and the anchor builder in
/// overlapped mode. Bounded so a slow consumer back-pressures the
/// producers instead of buffering the whole candidate set.
const OVERLAP_CHANNEL_DEPTH: usize = 32;

/// Pair mass → deterministic virtual-clock weight of a step-2 unit, in
/// ticks; 256 pairs per tick keeps light items visible on the replay.
fn step2_weight(pairs: u64) -> u64 {
    pairs.div_ceil(256).max(1)
}

/// Commit measured software step-2 unit timings as wall-clock spans,
/// pinned at `base` (the tracer-epoch offset of the stage's own epoch)
/// plus each unit's offset.
fn commit_step2_timings(tracer: &dyn Tracer, base: f64, times: &[ItemTiming]) {
    for t in times {
        let mut events = vec![UnitEvent::span(
            keys::EV_EXTEND,
            t.kernel_seconds,
            step2_weight(t.pairs),
        )];
        if t.send_seconds > 0.0 {
            events.push(UnitEvent::span(keys::EV_CHANNEL_FULL, t.send_seconds, 1));
        }
        events.push(UnitEvent::mark(keys::EV_CANDIDATES, t.candidates));
        tracer.commit(UnitTrace {
            stage: keys::STAGE_STEP2.to_string(),
            index: t.item as u64,
            lane: t.worker,
            start_seconds: Some(base + t.start_seconds),
            sim_clock: false,
            events,
        });
    }
}

/// Deterministic step-2 work model for virtual-clock traces: one
/// scheduled unit per bucketed work item, weighted by pair mass —
/// independent of backend, schedule and thread count.
fn commit_virtual_step2(tracer: &dyn Tracer, idx0: &SeedIndex, idx1: &SeedIndex, key_count: u32) {
    let items = step2::bucketed_items(idx0, idx1, 0..key_count);
    for (i, item) in items.iter().enumerate() {
        tracer.commit(UnitTrace {
            stage: keys::STAGE_STEP2.to_string(),
            index: i as u64,
            lane: 0,
            start_seconds: None,
            sim_clock: false,
            events: vec![UnitEvent::span(
                keys::EV_EXTEND,
                0.0,
                step2_weight(item.mass),
            )],
        });
    }
}

/// Deterministic step-3 work model for virtual-clock traces: one
/// scheduled unit per fixed-size anchor shard plus the merge walk.
fn commit_virtual_step3(tracer: &dyn Tracer, anchors: usize) {
    let shard_count = anchors.div_ceil(STEP3_SHARD);
    for shard in 0..shard_count {
        let size = (STEP3_SHARD.min(anchors - shard * STEP3_SHARD)) as u64;
        tracer.commit(UnitTrace {
            stage: keys::STAGE_STEP3.to_string(),
            index: shard as u64,
            lane: 0,
            start_seconds: None,
            sim_clock: false,
            events: vec![UnitEvent::span(keys::EV_EXTEND, 0.0, size)],
        });
    }
    if anchors > 0 {
        tracer.commit(UnitTrace {
            stage: keys::STAGE_STEP3_MERGE.to_string(),
            index: 0,
            lane: 0,
            start_seconds: None,
            sim_clock: false,
            events: vec![UnitEvent::span(
                keys::EV_MERGE_WAIT,
                0.0,
                (anchors as u64).div_ceil(STEP3_SHARD as u64),
            )],
        });
    }
}

/// Board lanes from the cycle-derived [`BoardReport`] timeline: DMA-in
/// and compute (recovery backoff split out, fault marks attached) per
/// FPGA, plus one result-link drain lane — all on the simulated clock,
/// so they are deterministic under both trace clocks.
fn commit_board_timeline(tracer: &dyn Tracer, report: &BoardReport) {
    for (i, seg) in report.timeline.iter().enumerate() {
        let idx = i as u64;
        tracer.commit(UnitTrace {
            stage: keys::STAGE_BOARD_DMA.to_string(),
            index: idx,
            lane: seg.fpga as u32,
            start_seconds: Some(seg.dma_start),
            sim_clock: true,
            events: vec![
                UnitEvent::span(keys::EV_DMA_IN, seg.dma_end - seg.dma_start, 1),
                UnitEvent::mark(keys::EV_ENTRY, seg.entry),
            ],
        });
        let busy = (seg.compute_end - seg.compute_start - seg.backoff_seconds).max(0.0);
        let mut events = vec![UnitEvent::span(keys::EV_COMPUTE, busy, 1)];
        if seg.backoff_seconds > 0.0 {
            events.push(UnitEvent::span(
                keys::EV_RETRY_BACKOFF,
                seg.backoff_seconds,
                1,
            ));
        }
        if seg.retries > 0 {
            events.push(UnitEvent::mark(keys::EV_FAULT_RETRY, seg.retries as u64));
        }
        if seg.degraded {
            events.push(UnitEvent::mark(keys::EV_FAULT_DEGRADED, 1));
        }
        tracer.commit(UnitTrace {
            stage: keys::STAGE_BOARD_COMPUTE.to_string(),
            index: idx,
            lane: seg.fpga as u32,
            start_seconds: Some(seg.compute_start),
            sim_clock: true,
            events,
        });
    }
    if !report.timeline.is_empty() {
        let drain_start = report
            .timeline
            .iter()
            .map(|s| s.compute_end)
            .fold(0.0, f64::max);
        tracer.commit(UnitTrace {
            stage: keys::STAGE_BOARD_LINK.to_string(),
            index: 0,
            lane: 0,
            start_seconds: Some(drain_start),
            sim_clock: true,
            events: vec![
                UnitEvent::span(
                    keys::EV_DMA_OUT,
                    report.wire_out_seconds + report.sync_seconds,
                    1,
                ),
                UnitEvent::mark(keys::EV_HITS, report.hit_count),
            ],
        });
    }
}

/// Fleet lanes: the same DMA/compute decomposition as
/// [`commit_board_timeline`], but on per-board stages
/// (`board.dma.bNN` / `board.compute.bNN`, lane = FPGA) so the trace
/// shows every board's simulated clock side by side; steal pulls and
/// quarantine drains land as their own spans (stall classes
/// `fleet-steal` / `fleet-quarantine-drain`) with victim / drained-count
/// marks. All sim-clock, so deterministic under both trace clocks.
fn commit_fleet_timeline(tracer: &dyn Tracer, report: &FleetReport) {
    for (i, (b, seg)) in report.timeline.iter().enumerate() {
        let idx = i as u64;
        tracer.commit(UnitTrace {
            stage: keys::board_dma_stage(*b),
            index: idx,
            lane: seg.fpga as u32,
            start_seconds: Some(seg.dma_start),
            sim_clock: true,
            events: vec![
                UnitEvent::span(keys::EV_DMA_IN, seg.dma_end - seg.dma_start, 1),
                UnitEvent::mark(keys::EV_ENTRY, seg.entry),
            ],
        });
        let busy = (seg.compute_end - seg.compute_start - seg.backoff_seconds).max(0.0);
        let mut events = vec![UnitEvent::span(keys::EV_COMPUTE, busy, 1)];
        if seg.backoff_seconds > 0.0 {
            events.push(UnitEvent::span(
                keys::EV_RETRY_BACKOFF,
                seg.backoff_seconds,
                1,
            ));
        }
        if seg.retries > 0 {
            events.push(UnitEvent::mark(keys::EV_FAULT_RETRY, seg.retries as u64));
        }
        if seg.degraded {
            events.push(UnitEvent::mark(keys::EV_FAULT_DEGRADED, 1));
        }
        tracer.commit(UnitTrace {
            stage: keys::board_compute_stage(*b),
            index: idx,
            lane: seg.fpga as u32,
            start_seconds: Some(seg.compute_start),
            sim_clock: true,
            events,
        });
    }
    for (i, ev) in report.events.iter().enumerate() {
        let events = match ev.kind {
            psc_rasc::FleetEventKind::Steal { victim } => vec![
                UnitEvent::span(keys::EV_STEAL_WAIT, ev.seconds, 1),
                UnitEvent::mark(keys::EV_STEAL_VICTIM, victim as u64),
            ],
            psc_rasc::FleetEventKind::QuarantineDrain { drained } => vec![
                UnitEvent::span(keys::EV_QUARANTINE_DRAIN, ev.seconds, 1),
                UnitEvent::mark(keys::EV_QUARANTINED, drained),
            ],
        };
        tracer.commit(UnitTrace {
            stage: keys::board_dma_stage(ev.board),
            index: (report.timeline.len() + i) as u64,
            lane: 0,
            start_seconds: Some(ev.at),
            sim_clock: true,
            events,
        });
    }
}

/// The historical barrier step 2: run the configured backend to
/// completion and hand back the full candidate vector.
#[allow(clippy::too_many_arguments)]
#[allow(clippy::type_complexity)]
fn run_step2_barrier(
    cfg: &PipelineConfig,
    params: &Step2Params<'_>,
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    span: usize,
    key_count: u32,
    matrix: &SubstitutionMatrix,
    tracer: &dyn Tracer,
) -> Result<
    (
        Vec<Candidate>,
        Step2Stats,
        Option<BoardReport>,
        Option<FleetReport>,
        Option<f64>,
    ),
    PipelineError,
> {
    let trace_wall = tracer.enabled() && tracer.clock() == TraceClock::Wall;
    // Run the whole key range on `threads` software workers, timed when
    // a wall-clock tracer is attached (timing changes no output).
    let software = |threads: usize| -> (Vec<Candidate>, Step2Stats) {
        if !trace_wall {
            return step2::run_software(flat0, idx0, flat1, idx1, params, threads);
        }
        let base = tracer.epoch_seconds();
        // analyzer: allow(determinism) -- flight-recorder stage epoch, never results
        let epoch = Instant::now();
        let (c, s, times) = step2::run_software_keys_timed(
            flat0,
            idx0,
            flat1,
            idx1,
            params,
            0..key_count,
            threads,
            &epoch,
        );
        commit_step2_timings(tracer, base, &times);
        (c, s)
    };
    Ok(match &cfg.backend {
        Step2Backend::SoftwareScalar => {
            let (c, s) = software(1);
            (c, s, None, None, None)
        }
        Step2Backend::SoftwareParallel { threads } => {
            let (c, s) = software(*threads);
            (c, s, None, None, None)
        }
        Step2Backend::Rasc {
            pe_count,
            fpga_count,
            host_threads,
        } => {
            let mut board_cfg = cfg.board_config(*pe_count, *fpga_count);
            board_cfg.record_timeline = tracer.enabled();
            if cfg.fleet.boards >= 2 {
                // Multi-board fleet: same entries, work-stealing
                // dispatch, bit-identical hit stream (the fleet emits
                // fault-free results by construction).
                let fleet = RascFleet::new(board_cfg, cfg.fleet, matrix)
                    .map_err(PipelineError::OperatorDoesNotFit)?;
                let mut candidates: Vec<Candidate> = Vec::new();
                let (mut s, r) = run_rasc_fleet_step2_stream(
                    &fleet,
                    flat0,
                    idx0,
                    flat1,
                    idx1,
                    span,
                    cfg.n_ctx,
                    *host_threads,
                    0..key_count,
                    |batch| candidates.extend(batch),
                )?;
                candidates.sort_unstable_by_key(|c| (c.pos0, c.pos1));
                s.candidates = candidates.len() as u64;
                (candidates, s, None, Some(r), None)
            } else {
                let board =
                    RascBoard::new(board_cfg, matrix).map_err(PipelineError::OperatorDoesNotFit)?;
                let (c, s, r) = run_rasc_step2(
                    &board,
                    flat0,
                    idx0,
                    flat1,
                    idx1,
                    span,
                    cfg.n_ctx,
                    *host_threads,
                    0..key_count,
                )?;
                (c, s, Some(r), None, None)
            }
        }
        Step2Backend::Hybrid {
            pe_count,
            cpu_threads,
            fpga_share,
        } => {
            if !(0.0..=1.0).contains(fpga_share) {
                return Err(PipelineError::InvalidFpgaShare(*fpga_share));
            }
            let cut = split_keys_by_pair_mass(idx0, idx1, *fpga_share);
            let mut board_cfg = cfg.board_config(*pe_count, 1);
            board_cfg.record_timeline = tracer.enabled();
            let board =
                RascBoard::new(board_cfg, matrix).map_err(PipelineError::OperatorDoesNotFit)?;
            // FPGA takes the dense low keys; CPU workers the rest.
            let (mut c, mut s, mut r) =
                run_rasc_step2(&board, flat0, idx0, flat1, idx1, span, cfg.n_ctx, 1, 0..cut)?;
            let base = tracer.epoch_seconds();
            // analyzer: allow(determinism) -- wall-clock step profile is the audited exception
            let t_cpu = Instant::now();
            let (c2, s2) = if trace_wall {
                let (c2, s2, times) = step2::run_software_keys_timed(
                    flat0,
                    idx0,
                    flat1,
                    idx1,
                    params,
                    cut..key_count,
                    *cpu_threads,
                    &t_cpu,
                );
                commit_step2_timings(tracer, base, &times);
                (c2, s2)
            } else {
                step2::run_software_keys(
                    flat0,
                    idx0,
                    flat1,
                    idx1,
                    params,
                    cut..key_count,
                    *cpu_threads,
                )
            };
            let cpu_wall = t_cpu.elapsed().as_secs_f64();
            // The host share sees the same fault plan as the board
            // (its own fault domain); recovery restores every faulted
            // block, so candidates stay bit-identical.
            if let Some(plan) = &cfg.fault_plan {
                let injector = psc_rasc::FaultInjector::new(plan.clone());
                let host = host_share_faults(
                    flat0,
                    idx0,
                    flat1,
                    idx1,
                    params,
                    cut..key_count,
                    &injector,
                    &cfg.recovery,
                )?;
                r.faults.merge(&host);
            }
            c.extend(c2);
            c.sort_unstable_by_key(|x| (x.pos0, x.pos1));
            s.pairs += s2.pairs;
            s.active_keys += s2.active_keys;
            s.candidates = c.len() as u64;
            // CPU and FPGA run concurrently: the slower side bounds
            // the effective step-2 time.
            let effective = r.accelerated_seconds.max(cpu_wall);
            (c, s, Some(r), None, Some(effective))
        }
    })
}

/// Streamed step 2: candidate batches flow through a bounded channel
/// into `dedup` as each board entry (or software chunk) completes,
/// instead of waiting for the full candidate vector. Because the anchor
/// dedup is order-invariant, the anchors — and everything downstream —
/// are bit-identical to [`run_step2_barrier`]; only wall clock changes.
/// `stats.candidates` is left for the caller to fill from
/// [`AnchorDedup::pushed`].
/// What the streamed step 2 hands back besides its side effects on the
/// dedup: counters, the board or fleet report (at most one is `Some`),
/// and the hybrid backend's effective FPGA share.
type Step2OverlapOutput = (
    Step2Stats,
    Option<BoardReport>,
    Option<FleetReport>,
    Option<f64>,
);

#[allow(clippy::too_many_arguments)]
fn run_step2_overlapped(
    cfg: &PipelineConfig,
    params: &Step2Params<'_>,
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    span: usize,
    key_count: u32,
    matrix: &SubstitutionMatrix,
    dedup: &mut AnchorDedup<'_>,
    tracer: &dyn Tracer,
) -> Result<Step2OverlapOutput, PipelineError> {
    let trace_wall = tracer.enabled() && tracer.clock() == TraceClock::Wall;
    let (tx, rx) = channel::bounded::<Vec<Candidate>>(OVERLAP_CHANNEL_DEPTH);
    thread::scope(|s| {
        let consumer = s.spawn(move |_| {
            if !trace_wall {
                for batch in rx.iter() {
                    for c in &batch {
                        dedup.push(c);
                    }
                }
                return;
            }
            // Traced consumer: per batch, the blocked wait on an empty
            // channel (stall), the dedup-push time (busy), and a
            // queue-depth sample right after the take. Only clock
            // samples are taken in the loop; units are committed once
            // the channel closes, keeping the tracer's lock off the
            // consumer's hot path.
            let mut rows: Vec<(f64, f64, f64, u64, u64)> = Vec::new();
            loop {
                let wait0 = tracer.epoch_seconds();
                let Ok(batch) = rx.recv() else { break };
                let waited = (tracer.epoch_seconds() - wait0).max(0.0);
                let depth = rx.len() as u64;
                let push0 = tracer.epoch_seconds();
                for c in &batch {
                    dedup.push(c);
                }
                let pushed = (tracer.epoch_seconds() - push0).max(0.0);
                rows.push((wait0, waited, pushed, depth, batch.len() as u64));
            }
            for (index, (wait0, waited, pushed, depth, batch_len)) in rows.into_iter().enumerate() {
                tracer.commit(UnitTrace {
                    stage: keys::STAGE_CHANNEL_RECV.to_string(),
                    index: index as u64,
                    lane: 0,
                    start_seconds: Some(wait0),
                    sim_clock: false,
                    events: vec![
                        UnitEvent::span(keys::EV_CHANNEL_EMPTY, waited, 1),
                        UnitEvent::span(keys::EV_MERGE, pushed, 1),
                        UnitEvent::mark(keys::EV_QUEUE_DEPTH, depth),
                        UnitEvent::mark(keys::EV_BATCH, batch_len),
                    ],
                });
            }
        });
        // Producer-side channel instrumentation for the board
        // backends: each emitted batch becomes a `channel.send` unit
        // whose span is the (possibly back-pressured) send. Samples
        // accumulate here and are committed after the producer drains.
        let mut sends: Vec<(f64, f64, u64, u64)> = Vec::new();
        let result = (|| {
            let sends = &mut sends;
            let mut emit = |batch: Vec<Candidate>| {
                if !trace_wall {
                    let _ = tx.send(batch);
                    return;
                }
                let n = batch.len() as u64;
                let s0 = tracer.epoch_seconds();
                let _ = tx.send(batch);
                let dur = (tracer.epoch_seconds() - s0).max(0.0);
                sends.push((s0, dur, tx.len() as u64, n));
            };
            // Software producers over `keys` on `threads` workers,
            // timed when a wall-clock tracer is attached.
            let stream_software = |threads: usize, keys: std::ops::Range<u32>| -> Step2Stats {
                if !trace_wall {
                    return step2::run_software_stream(
                        flat0, idx0, flat1, idx1, params, keys, threads, &tx,
                    );
                }
                let base = tracer.epoch_seconds();
                // analyzer: allow(determinism) -- flight-recorder stage epoch, never results
                let epoch = Instant::now();
                let (stats, times) = step2::run_software_stream_timed(
                    flat0, idx0, flat1, idx1, params, keys, threads, &tx, &epoch,
                );
                commit_step2_timings(tracer, base, &times);
                stats
            };
            Ok(match &cfg.backend {
                Step2Backend::SoftwareScalar => {
                    let stats = stream_software(1, 0..key_count);
                    (stats, None, None, None)
                }
                Step2Backend::SoftwareParallel { threads } => {
                    let stats = stream_software(*threads, 0..key_count);
                    (stats, None, None, None)
                }
                Step2Backend::Rasc {
                    pe_count,
                    fpga_count,
                    host_threads,
                } => {
                    let mut board_cfg = cfg.board_config(*pe_count, *fpga_count);
                    board_cfg.record_timeline = tracer.enabled();
                    if cfg.fleet.boards >= 2 {
                        let fleet = RascFleet::new(board_cfg, cfg.fleet, matrix)
                            .map_err(PipelineError::OperatorDoesNotFit)?;
                        let (stats, report) = run_rasc_fleet_step2_stream(
                            &fleet,
                            flat0,
                            idx0,
                            flat1,
                            idx1,
                            span,
                            cfg.n_ctx,
                            *host_threads,
                            0..key_count,
                            &mut emit,
                        )?;
                        (stats, None, Some(report), None)
                    } else {
                        let board = RascBoard::new(board_cfg, matrix)
                            .map_err(PipelineError::OperatorDoesNotFit)?;
                        let (stats, report) = run_rasc_step2_stream(
                            &board,
                            flat0,
                            idx0,
                            flat1,
                            idx1,
                            span,
                            cfg.n_ctx,
                            *host_threads,
                            0..key_count,
                            &mut emit,
                        )?;
                        (stats, Some(report), None, None)
                    }
                }
                Step2Backend::Hybrid {
                    pe_count,
                    cpu_threads,
                    fpga_share,
                } => {
                    if !(0.0..=1.0).contains(fpga_share) {
                        return Err(PipelineError::InvalidFpgaShare(*fpga_share));
                    }
                    let cut = split_keys_by_pair_mass(idx0, idx1, *fpga_share);
                    let mut board_cfg = cfg.board_config(*pe_count, 1);
                    board_cfg.record_timeline = tracer.enabled();
                    let board = RascBoard::new(board_cfg, matrix)
                        .map_err(PipelineError::OperatorDoesNotFit)?;
                    let (mut stats, mut report) = run_rasc_step2_stream(
                        &board,
                        flat0,
                        idx0,
                        flat1,
                        idx1,
                        span,
                        cfg.n_ctx,
                        1,
                        0..cut,
                        &mut emit,
                    )?;
                    // analyzer: allow(determinism) -- wall-clock step profile is the audited exception
                    let t_cpu = Instant::now();
                    let s2 = stream_software(*cpu_threads, cut..key_count);
                    let cpu_wall = t_cpu.elapsed().as_secs_f64();
                    stats.pairs += s2.pairs;
                    stats.active_keys += s2.active_keys;
                    // Same host-share fault exposure as the barrier
                    // path — the summary is workload + plan pure, so
                    // both modes report identical fault counters.
                    if let Some(plan) = &cfg.fault_plan {
                        let injector = psc_rasc::FaultInjector::new(plan.clone());
                        let host = host_share_faults(
                            flat0,
                            idx0,
                            flat1,
                            idx1,
                            params,
                            cut..key_count,
                            &injector,
                            &cfg.recovery,
                        )?;
                        report.faults.merge(&host);
                    }
                    let effective = report.accelerated_seconds.max(cpu_wall);
                    (stats, Some(report), None, Some(effective))
                }
            })
        })();
        drop(tx);
        for (index, (s0, dur, depth, batch_len)) in sends.into_iter().enumerate() {
            tracer.commit(UnitTrace {
                stage: keys::STAGE_CHANNEL_SEND.to_string(),
                index: index as u64,
                lane: 0,
                start_seconds: Some(s0),
                sim_clock: false,
                events: vec![
                    UnitEvent::span(keys::EV_CHANNEL_FULL, dur, 1),
                    UnitEvent::mark(keys::EV_QUEUE_DEPTH, depth),
                    UnitEvent::mark(keys::EV_BATCH, batch_len),
                ],
            });
        }
        consumer.join().expect("overlap consumer panicked");
        result
    })
    .expect("overlap scope")
}

/// Virtual fault domain of the hybrid backend's host (CPU) share —
/// disjoint from real FPGA indices so one seeded [`FaultPlan`] draws
/// independent fault streams for the board and the host kernel.
const HOST_FAULT_DOMAIN: usize = 0xFF;

/// Checksum over a candidate list with the same Fletcher accumulator
/// the board commits per entry ([`psc_rasc::fault::hits_checksum`]) —
/// positions and scores both covered, so any PeFlip-style score
/// corruption is caught.
fn candidates_checksum(cands: &[Candidate]) -> u64 {
    // Reuse the board's checksum by viewing each candidate as a hit.
    let hits: Vec<psc_rasc::Hit> = cands
        .iter()
        .map(|c| psc_rasc::Hit {
            i0: c.pos0,
            i1: c.pos1,
            score: c.score,
        })
        .collect();
    psc_rasc::fault::hits_checksum(&hits)
}

/// Seeded fault injection over the host (CPU) share of a hybrid run.
///
/// The host share is exposed to the same [`FaultPlan`] as the board:
/// each bucketed work item of the CPU key range is one fault "entry"
/// (domain [`HOST_FAULT_DOMAIN`]), and a fired fault behaves like a PE
/// score flip — one bit of one candidate's score is corrupted in the
/// item's result block. Detection is the board's own mechanism: the
/// per-item result checksum mismatches and the item is recomputed,
/// backing off per [`psc_rasc::RecoveryPolicy`] until the fault clears
/// or the retry budget degrades (host degradation *is* the software
/// kernel, so recovery always restores the clean block). A corruption
/// with nothing to corrupt (empty result block) is harmless and
/// accepted, mirroring the board. Candidates are bit-identical with and
/// without a plan; only the returned [`FaultSummary`] differs, and it
/// is a pure function of workload + plan (thread-count independent).
#[allow(clippy::too_many_arguments)]
fn host_share_faults(
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    params: &Step2Params<'_>,
    keys: std::ops::Range<u32>,
    injector: &psc_rasc::FaultInjector,
    recovery: &psc_rasc::RecoveryPolicy,
) -> Result<psc_rasc::FaultSummary, PipelineError> {
    let mut summary = psc_rasc::FaultSummary::default();
    let items = step2::bucketed_items(idx0, idx1, keys);
    for (i, item) in items.iter().enumerate() {
        let entry = i as u64;
        // Cheap probe: most items never fault, and the clean block is
        // only needed once a fault actually fires.
        if injector.fire(entry, HOST_FAULT_DOMAIN, 0).is_none() {
            continue;
        }
        let (clean, _) =
            step2::run_software_keys(flat0, idx0, flat1, idx1, params, item.keys.clone(), 1);
        let clean_sum = candidates_checksum(&clean);
        let mut attempt = 0u32;
        // Loop until an attempt draws no fault: that recomputation is
        // the clean block and its checksum matches the reference.
        while let Some(kind) = injector.fire(entry, HOST_FAULT_DOMAIN, attempt) {
            summary.faults_injected += 1;
            if clean.is_empty() {
                // Nothing to corrupt: the flip lands outside the result
                // block, the checksum matches, the attempt is accepted.
                break;
            }
            let mut corrupted = clean.clone();
            let victim =
                injector.roll(entry, HOST_FAULT_DOMAIN, attempt, corrupted.len() as u64) as usize;
            let bit = injector.roll(entry, HOST_FAULT_DOMAIN, attempt.wrapping_add(97), 31);
            corrupted[victim].score ^= 1i32 << bit;
            if candidates_checksum(&corrupted) == clean_sum {
                // Undetectable corruption (cannot happen with a bit
                // flip under this checksum, but keep the board's
                // accept-if-clean contract explicit).
                break;
            }
            summary.faults_detected += 1;
            summary.checksum_mismatches += 1;
            if attempt >= recovery.max_retries {
                if recovery.degrade {
                    // "Degrading" the host share recomputes with the
                    // same software kernel — the clean block stands.
                    summary.entries_degraded += 1;
                    break;
                }
                return Err(PipelineError::BoardFault(psc_rasc::BoardFault {
                    entry,
                    fpga: HOST_FAULT_DOMAIN,
                    kind,
                    attempts: attempt + 1,
                }));
            }
            summary.retries += 1;
            summary.backoff_cycles += recovery.backoff(attempt);
            attempt += 1;
        }
    }
    Ok(summary)
}

/// Prefix key cut such that keys `0..cut` carry ≈ `share` of the total
/// pair mass.
fn split_keys_by_pair_mass(idx0: &SeedIndex, idx1: &SeedIndex, share: f64) -> u32 {
    let total = idx0.pair_count(idx1);
    let want = (total as f64 * share) as u64;
    let mut acc = 0u64;
    for key in 0..idx0.key_count() as u32 {
        if acc >= want {
            return key;
        }
        acc += idx0.list(key).len() as u64 * idx1.list(key).len() as u64;
    }
    idx0.key_count() as u32
}

/// Step 2 on the simulated board: stream one entry per active key in
/// `keys`, handing each entry's surviving candidates to `emit` as the
/// entry completes (entry *completion* order — position order only
/// within one batch). Errors only when an entry exhausts the board's
/// fault recovery with degradation disabled. The returned stats leave
/// `candidates` at zero for the consumer to count.
#[allow(clippy::too_many_arguments)]
fn run_rasc_step2_stream(
    board: &RascBoard,
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    span: usize,
    n_ctx: usize,
    host_threads: usize,
    keys: std::ops::Range<u32>,
    mut emit: impl FnMut(Vec<Candidate>),
) -> Result<(Step2Stats, BoardReport), PipelineError> {
    // Keys with work on both sides, in key order.
    let active: Vec<u32> = keys
        .filter(|&k| !idx0.list(k).is_empty() && !idx1.list(k).is_empty())
        .collect();

    let mut stats = Step2Stats {
        active_keys: active.len() as u64,
        ..Step2Stats::default()
    };
    for &k in &active {
        stats.pairs += idx0.list(k).len() as u64 * idx1.list(k).len() as u64;
    }

    let entries = active.iter().map(|&key| {
        let mut il0 = Vec::new();
        let mut il1 = Vec::new();
        step2::gather_windows(flat0, idx0.list(key), span, n_ctx, &mut il0);
        step2::gather_windows(flat1, idx1.list(key), span, n_ctx, &mut il1);
        Entry { il0, il1 }
    });

    let report = board
        .run_stream(entries, host_threads, |entry_idx, hits| {
            let key = active[entry_idx as usize];
            let list0 = idx0.list(key);
            let list1 = idx1.list(key);
            let mut batch = Vec::with_capacity(hits.len());
            for h in hits {
                batch.push(Candidate {
                    pos0: list0[h.i0 as usize],
                    pos1: list1[h.i1 as usize],
                    score: h.score,
                });
            }
            if !batch.is_empty() {
                emit(batch);
            }
        })
        .map_err(PipelineError::BoardFault)?;
    Ok((stats, report))
}

/// Barrier wrapper over [`run_rasc_step2_stream`]: collect every batch,
/// then normalize to position order (entry completion order depends on
/// host threading, and under a fault plan degraded entries report in
/// software order).
#[allow(clippy::too_many_arguments)]
fn run_rasc_step2(
    board: &RascBoard,
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    span: usize,
    n_ctx: usize,
    host_threads: usize,
    keys: std::ops::Range<u32>,
) -> Result<(Vec<Candidate>, Step2Stats, BoardReport), PipelineError> {
    let mut candidates: Vec<Candidate> = Vec::new();
    let (mut stats, report) = run_rasc_step2_stream(
        board,
        flat0,
        idx0,
        flat1,
        idx1,
        span,
        n_ctx,
        host_threads,
        keys,
        |batch| candidates.extend(batch),
    )?;
    candidates.sort_unstable_by_key(|c| (c.pos0, c.pos1));
    stats.candidates = candidates.len() as u64;
    Ok((candidates, stats, report))
}

/// [`run_rasc_step2_stream`] across a multi-board fleet: one entry per
/// active key, dispatched by the fleet's work-stealing scheduler. The
/// emitted candidate multiset is bit-identical to the single-board run
/// at any board count, steal policy, or fault plan — the fleet streams
/// fault-free results by construction (see `psc_rasc::fleet`).
#[allow(clippy::too_many_arguments)]
fn run_rasc_fleet_step2_stream(
    fleet: &RascFleet,
    flat0: &FlatBank,
    idx0: &SeedIndex,
    flat1: &FlatBank,
    idx1: &SeedIndex,
    span: usize,
    n_ctx: usize,
    host_threads: usize,
    keys: std::ops::Range<u32>,
    mut emit: impl FnMut(Vec<Candidate>),
) -> Result<(Step2Stats, FleetReport), PipelineError> {
    let active: Vec<u32> = keys
        .filter(|&k| !idx0.list(k).is_empty() && !idx1.list(k).is_empty())
        .collect();

    let mut stats = Step2Stats {
        active_keys: active.len() as u64,
        ..Step2Stats::default()
    };
    for &k in &active {
        stats.pairs += idx0.list(k).len() as u64 * idx1.list(k).len() as u64;
    }

    let entries = active.iter().map(|&key| {
        let mut il0 = Vec::new();
        let mut il1 = Vec::new();
        step2::gather_windows(flat0, idx0.list(key), span, n_ctx, &mut il0);
        step2::gather_windows(flat1, idx1.list(key), span, n_ctx, &mut il1);
        Entry { il0, il1 }
    });

    let report = fleet
        .run_stream(entries, host_threads, |entry_idx, hits| {
            let key = active[entry_idx as usize];
            let list0 = idx0.list(key);
            let list1 = idx1.list(key);
            let mut batch = Vec::with_capacity(hits.len());
            for h in hits {
                batch.push(Candidate {
                    pos0: list0[h.i0 as usize],
                    pos1: list1[h.i1 as usize],
                    score: h.score,
                });
            }
            if !batch.is_empty() {
                emit(batch);
            }
        })
        .map_err(PipelineError::BoardFault)?;
    Ok((stats, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SeedChoice, Step2Backend};
    use psc_score::blosum62;
    use psc_seqio::Seq;

    fn bank(seqs: &[&[u8]]) -> Bank {
        seqs.iter()
            .enumerate()
            .map(|(i, s)| Seq::protein(format!("s{i}"), s))
            .collect()
    }

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            n_ctx: 8,
            threshold: 22,
            max_evalue: 10.0, // tiny banks: keep permissive
            ..PipelineConfig::default()
        }
    }

    #[test]
    fn finds_identical_pair() {
        let s = b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW".as_slice();
        let b0 = bank(&[s]);
        let b1 = bank(&[s]);
        let out = Pipeline::new(small_config()).run(&b0, &b1, blosum62());
        assert_eq!(out.stats.reported, out.hsps.len());
        assert!(!out.hsps.is_empty(), "stats: {:?}", out.stats);
        let h = &out.hsps[0];
        assert_eq!((h.start0, h.end0), (0, 32));
        assert_eq!((h.start1, h.end1), (0, 32));
        assert!(out.profile.total() > 0.0);
        assert!(out.board.is_none());
    }

    #[test]
    fn unrelated_banks_stay_silent() {
        let b0 = bank(&[b"MKVLAWMKVLAWMKVLAWMKVLAW"]);
        let b1 = bank(&[b"GGGGGGGGGGGGGGGGGGGGGGGG"]);
        let out = Pipeline::new(small_config()).run(&b0, &b1, blosum62());
        assert!(out.hsps.is_empty());
        assert_eq!(out.stats.step2.pairs, 0);
    }

    #[test]
    fn backends_agree() {
        let seqs: Vec<Vec<u8>> = (0..12)
            .map(|i| {
                (0..150u32)
                    .map(|j| (((i * 13 + j * 11) % 89) % 20) as u8)
                    .collect()
            })
            .collect();
        let b0: Bank = seqs[..6]
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("q{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        // Bank 1 shares two sequences with bank 0 → guaranteed hits.
        let b1: Bank = seqs[4..]
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("t{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();

        let mk = |backend| {
            let cfg = PipelineConfig {
                backend,
                ..small_config()
            };
            Pipeline::new(cfg).run(&b0, &b1, blosum62())
        };
        let scalar = mk(Step2Backend::SoftwareScalar);
        let parallel = mk(Step2Backend::SoftwareParallel { threads: 4 });
        let rasc = mk(Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads: 2,
        });
        assert!(!scalar.hsps.is_empty());
        assert_eq!(scalar.hsps, parallel.hsps);
        assert_eq!(scalar.hsps, rasc.hsps);
        assert_eq!(scalar.stats.step2, parallel.stats.step2);
        assert_eq!(scalar.stats.step2, rasc.stats.step2);
        assert!(rasc.board.is_some());
        assert!(rasc.profile.step2_accelerated.is_some());
    }

    #[test]
    fn kernel_choices_agree_and_are_recorded() {
        use psc_align::{KernelBackend, KernelChoice};
        let seqs: Vec<Vec<u8>> = (0..10)
            .map(|i| {
                (0..140u32)
                    .map(|j| (((i * 19 + j * 7) % 91) % 20) as u8)
                    .collect()
            })
            .collect();
        let b0: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("q{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        let b1 = b0.clone();
        let mk = |choice| {
            let cfg = PipelineConfig {
                step2_kernel: choice,
                ..small_config()
            };
            Pipeline::new(cfg).run(&b0, &b1, blosum62())
        };
        let scalar = mk(KernelChoice::Scalar);
        assert!(!scalar.hsps.is_empty());
        assert_eq!(scalar.profile.step2_kernel, Some(KernelBackend::Scalar));
        for choice in [
            KernelChoice::Auto,
            KernelChoice::Profile,
            KernelChoice::Simd,
            KernelChoice::Wide,
            KernelChoice::Split,
        ] {
            let out = mk(choice);
            assert_eq!(scalar.hsps, out.hsps, "{choice:?}");
            assert_eq!(scalar.stats.step2, out.stats.step2, "{choice:?}");
            let recorded = out.profile.step2_kernel.expect("software kernel recorded");
            assert_ne!(
                recorded,
                KernelBackend::Scalar,
                "{choice:?} must not fall back to scalar"
            );
        }
    }

    #[test]
    fn schedules_agree_and_lane_fill_is_recorded() {
        use crate::step2::Step2Schedule;
        let seqs: Vec<Vec<u8>> = (0..14)
            .map(|i| {
                (0..160u32)
                    .map(|j| (((i * 23 + j * 5) % 83) % 20) as u8)
                    .collect()
            })
            .collect();
        let b0: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("q{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        let b1 = b0.clone();
        let mk = |schedule, threads| {
            let cfg = PipelineConfig {
                step2_schedule: schedule,
                backend: if threads > 1 {
                    Step2Backend::SoftwareParallel { threads }
                } else {
                    Step2Backend::SoftwareScalar
                },
                ..small_config()
            };
            let rec = psc_telemetry::MemRecorder::new();
            let out = Pipeline::new(cfg).run_recorded(&b0, &b1, blosum62(), &rec);
            (out, rec.snapshot())
        };
        let (want, base_snap) = mk(Step2Schedule::Contiguous, 1);
        assert!(!want.hsps.is_empty());
        for schedule in [Step2Schedule::Contiguous, Step2Schedule::Bucketed] {
            for threads in [1, 4] {
                let (out, snap) = mk(schedule, threads);
                assert_eq!(want.hsps, out.hsps, "{schedule:?} threads={threads}");
                assert_eq!(
                    want.stats.step2, out.stats.step2,
                    "{schedule:?} threads={threads}"
                );
                // Lane-occupancy diagnostics ride along whenever a lane
                // kernel resolved (Auto resolves to one on SIMD hosts).
                if snap
                    .meta
                    .get("step2.kernel")
                    .is_some_and(|k| k != "scalar" && k != "profile")
                {
                    let fill = snap
                        .histograms
                        .get("step2.lane_fill")
                        .expect("lane kernel must record step2.lane_fill");
                    assert!(fill.count > 0, "empty lane_fill histogram");
                    assert!(
                        snap.counters.get("step2.lane_slots_total").copied() > Some(0),
                        "missing lane slot counters"
                    );
                }
                // The pair-mass histogram is schedule-independent.
                assert_eq!(
                    base_snap.histograms.get("step2.pairs_per_key"),
                    snap.histograms.get("step2.pairs_per_key"),
                    "{schedule:?} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn exact_seed_ablation_runs() {
        let s = b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW".as_slice();
        let b0 = bank(&[s]);
        let b1 = bank(&[s]);
        let cfg = PipelineConfig {
            seed: SeedChoice::Exact(4),
            ..small_config()
        };
        let out = Pipeline::new(cfg).run(&b0, &b1, blosum62());
        assert!(!out.hsps.is_empty());
    }

    #[test]
    fn soft_masking_suppresses_low_complexity_seeding() {
        // A poly-A homopolymer pair seeds furiously without masking and
        // not at all with it; a normal homologous pair is found either
        // way (step 3 sees the original residues).
        let mut seqs0 = vec![Seq::protein("real", b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW")];
        seqs0.push(Seq::protein("junk", &[b'A'; 80]));
        let b0 = Bank::from_seqs(seqs0.clone());
        let b1 = Bank::from_seqs(seqs0);
        let plain = Pipeline::new(small_config()).run(&b0, &b1, blosum62());
        let masked_cfg = PipelineConfig {
            mask: Some(psc_seqio::MaskConfig::default()),
            ..small_config()
        };
        let masked = Pipeline::new(masked_cfg).run(&b0, &b1, blosum62());
        assert!(
            masked.stats.step2.pairs < plain.stats.step2.pairs / 2,
            "masking should kill homopolymer pairs: {} vs {}",
            masked.stats.step2.pairs,
            plain.stats.step2.pairs
        );
        // The real pair is still reported.
        assert!(masked
            .hsps
            .iter()
            .any(|h| h.seq0 == 0 && h.seq1 == 0 && h.end0 - h.start0 == 32));
    }

    #[test]
    fn hybrid_backend_agrees_with_scalar() {
        let seqs: Vec<Vec<u8>> = (0..10)
            .map(|i| {
                (0..160u32)
                    .map(|j| (((i * 17 + j * 5) % 83) % 20) as u8)
                    .collect()
            })
            .collect();
        let b0: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("q{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        let b1 = b0.clone();
        let scalar = Pipeline::new(small_config()).run(&b0, &b1, blosum62());
        for share in [0.0, 0.3, 0.7, 1.0] {
            let cfg = PipelineConfig {
                backend: Step2Backend::Hybrid {
                    pe_count: 64,
                    cpu_threads: 2,
                    fpga_share: share,
                },
                ..small_config()
            };
            let hybrid = Pipeline::new(cfg).run(&b0, &b1, blosum62());
            assert_eq!(scalar.hsps, hybrid.hsps, "share={share}");
            assert_eq!(scalar.stats.step2, hybrid.stats.step2, "share={share}");
            assert!(hybrid.profile.step2_accelerated.is_some());
        }
    }

    #[test]
    fn hybrid_host_share_faults_are_deterministic_and_harmless() {
        let seqs: Vec<Vec<u8>> = (0..14)
            .map(|i| {
                (0..160u32)
                    .map(|j| (((i * 17 + j * 3) % 79) % 20) as u8)
                    .collect()
            })
            .collect();
        let b0: Bank = seqs
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("q{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        let b1 = b0.clone();
        // share 0.0 sends every key to the host kernel, so the fault
        // summary below is purely host-share activity.
        let mk = |fault_plan, overlap| {
            let cfg = PipelineConfig {
                backend: Step2Backend::Hybrid {
                    pe_count: 64,
                    cpu_threads: 2,
                    fpga_share: 0.0,
                },
                fault_plan,
                overlap,
                ..small_config()
            };
            Pipeline::new(cfg).run(&b0, &b1, blosum62())
        };
        let plan = psc_rasc::FaultPlan::Seeded {
            seed: 7,
            rate_ppm: 600_000,
        };
        let clean = mk(None, false);
        let faulted = mk(Some(plan.clone()), false);
        // Recovery restores every corrupted block: output identical.
        assert_eq!(clean.hsps, faulted.hsps);
        assert_eq!(clean.stats.step2, faulted.stats.step2);
        let summary = faulted.board.as_ref().expect("hybrid board report").faults;
        assert!(summary.faults_injected > 0, "plan never fired: {summary:?}");
        assert_eq!(summary.faults_detected, summary.checksum_mismatches);
        assert!(summary.retries > 0, "no retry exercised: {summary:?}");
        // Pure function of workload + plan: replays and the overlapped
        // mode report the exact same counters.
        let replay = mk(Some(plan.clone()), false);
        assert_eq!(summary, replay.board.as_ref().unwrap().faults);
        let overlapped = mk(Some(plan), true);
        assert_eq!(clean.hsps, overlapped.hsps);
        assert_eq!(summary, overlapped.board.as_ref().unwrap().faults);
    }

    #[test]
    fn rasc_gapped_step3_agrees_with_software() {
        use crate::config::Step3Backend;
        let s = b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW".as_slice();
        let b0 = bank(&[s]);
        let b1 = bank(&[s]);
        let sw = Pipeline::new(small_config()).run(&b0, &b1, blosum62());
        let cfg = PipelineConfig {
            step3_backend: Step3Backend::RascGapped { band: 64 },
            ..small_config()
        };
        let hw = Pipeline::new(cfg).run(&b0, &b1, blosum62());
        assert_eq!(sw.hsps, hw.hsps);
        assert!(sw.profile.step3_accelerated.is_none());
        let accel = hw.profile.step3_accelerated.expect("gapped operator time");
        assert!(accel > 0.0);
        // total_concurrent never exceeds the sequential total.
        assert!(hw.profile.total_concurrent() <= hw.profile.total() + 1e-12);
    }

    #[test]
    fn shard_critical_path_models_the_pull_schedule() {
        // One worker: plain sum.
        let costs = [3.0, 1.0, 1.0, 1.0];
        assert_eq!(shard_critical_path(&costs, 1), 6.0);
        // Two workers: A takes shard 0 (3s); B takes 1, 2, 3 (3s) — the
        // greedy pull balances around the long head shard.
        assert_eq!(shard_critical_path(&costs, 2), 3.0);
        // More workers than shards changes nothing past one-per-worker.
        assert_eq!(shard_critical_path(&costs, 8), 3.0);
        assert_eq!(shard_critical_path(&costs, 4), 3.0);
        // Uniform shards split evenly.
        let uniform = [1.0f64; 8];
        assert!((shard_critical_path(&uniform, 4) - 2.0).abs() < 1e-12);
        // Degenerate inputs.
        assert_eq!(shard_critical_path(&[], 4), 0.0);
        assert_eq!(shard_critical_path(&[2.5], 4), 2.5);
    }

    #[test]
    fn anchor_dedup_is_push_order_invariant() {
        // Two 32-residue sequences per bank → flat positions 0..64 with
        // a sequence break at 32. The candidate set exercises chained
        // fold windows, an exact score tie inside one group (strict `>`
        // must keep the lower-local1 member regardless of push order),
        // a window break, and several (seq0, seq1, diag) buckets.
        let s = b"MKVLAWRNDCQEHFYWMKVLAWRNDCQEHFYW".as_slice();
        let b0 = bank(&[s, s]);
        let b1 = bank(&[s, s]);
        let f0 = FlatBank::from_bank(&b0);
        let f1 = FlatBank::from_bank(&b1);
        let cand = |pos0: u32, pos1: u32, score: i32| Candidate { pos0, pos1, score };
        let base = vec![
            cand(0, 0, 10),
            cand(4, 4, 12), // ties with the next; first-in-position-order wins
            cand(9, 9, 12),
            cand(20, 20, 5), // past the fold window: its own anchor
            cand(0, 4, 7),
            cand(2, 6, 9),
            cand(33, 1, 15),  // seq 1 vs seq 0
            cand(5, 40, 6),   // seq 0 vs seq 1
            cand(40, 45, 6),  // seq 1 vs seq 1
            cand(44, 49, 20), // same diagonal, inside the window
        ];
        let run = |cands: &[Candidate]| {
            let mut d = AnchorDedup::new(&f0, &f1, 8);
            for c in cands {
                d.push(c);
            }
            assert_eq!(d.pushed(), cands.len() as u64);
            d.finish()
        };
        let reference = run(&base);
        assert!(reference.len() >= 5, "want several buckets: {reference:?}");
        let mut state = 0x243f_6a88u64;
        for trial in 0..32 {
            let mut v = base.clone();
            let shift = trial % v.len();
            v.rotate_left(shift);
            for i in (1..v.len()).rev() {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                v.swap(i, (state >> 33) as usize % (i + 1));
            }
            assert_eq!(run(&v), reference, "trial {trial}");
        }
    }

    #[test]
    fn overlap_and_parallel_step3_match_barrier() {
        let seqs: Vec<Vec<u8>> = (0..12)
            .map(|i| {
                (0..150u32)
                    .map(|j| (((i * 13 + j * 11) % 89) % 20) as u8)
                    .collect()
            })
            .collect();
        let b0: Bank = seqs[..6]
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("q{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        let b1: Bank = seqs[4..]
            .iter()
            .enumerate()
            .map(|(i, s)| Seq::from_codes(format!("t{i}"), s.clone(), psc_seqio::SeqKind::Protein))
            .collect();
        let backends = [
            Step2Backend::SoftwareScalar,
            Step2Backend::SoftwareParallel { threads: 4 },
            Step2Backend::Rasc {
                pe_count: 64,
                fpga_count: 2,
                host_threads: 2,
            },
            Step2Backend::Hybrid {
                pe_count: 64,
                cpu_threads: 2,
                fpga_share: 0.5,
            },
        ];
        for backend in backends {
            let barrier = Pipeline::new(PipelineConfig {
                backend: backend.clone(),
                ..small_config()
            })
            .run(&b0, &b1, blosum62());
            assert!(!barrier.hsps.is_empty());
            for (overlap, step3_threads) in [(false, 4), (true, 1), (true, 4)] {
                let cfg = PipelineConfig {
                    backend: backend.clone(),
                    overlap,
                    step3_threads,
                    ..small_config()
                };
                let out = Pipeline::new(cfg).run(&b0, &b1, blosum62());
                let tag = format!("{} overlap={overlap} t3={step3_threads}", backend.name());
                assert_eq!(barrier.hsps, out.hsps, "{tag}");
                assert_eq!(barrier.stats.step2, out.stats.step2, "{tag}");
                assert_eq!(barrier.stats.anchors, out.stats.anchors, "{tag}");
            }
        }
    }

    #[test]
    fn anchor_dedup_limits_step3() {
        // A long identical pair seeds at every position; anchors must be
        // far fewer than candidates.
        let s: Vec<u8> = (0..600u32).map(|j| ((j * 7 + j / 13) % 20) as u8).collect();
        let b0: Bank =
            std::iter::once(Seq::from_codes("a", s.clone(), psc_seqio::SeqKind::Protein)).collect();
        let b1: Bank =
            std::iter::once(Seq::from_codes("b", s, psc_seqio::SeqKind::Protein)).collect();
        let out = Pipeline::new(small_config()).run(&b0, &b1, blosum62());
        assert!(out.stats.step2.candidates > 0);
        assert!(
            out.stats.anchors * 3 < out.stats.step2.candidates,
            "anchors {} vs candidates {}",
            out.stats.anchors,
            out.stats.step2.candidates
        );
        assert_eq!(out.hsps.len(), 1, "one clean alignment expected");
    }
}
