//! The pipeline and the tblastn-like baseline must agree on what is
//! similar: every planted gene found by one should be found by the other
//! (the paper's sensitivity claim, Table 6, in its crudest form).

use psc_blast::{tblastn, BlastConfig};
use psc_core::{search_genome, PipelineConfig};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig};
use psc_score::blosum62;
use psc_seqio::{translate_six_frames, Frame, FrameCoord, GeneticCode};

#[test]
fn both_tools_recover_the_same_plants() {
    let proteins = random_bank(&BankConfig {
        count: 15,
        min_len: 90,
        max_len: 180,
        seed: 501,
    });
    let synth = generate_genome(
        &GenomeConfig {
            len: 45_000,
            gene_count: 12,
            mutation: MutationConfig {
                divergence: 0.2,
                indel_rate: 0.002,
                indel_extend: 0.3,
            },
            seed: 502,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    assert!(synth.plants.len() >= 8);

    // Pipeline.
    let pipe = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig::default(),
    );

    // Baseline: same translated-frames subject bank.
    let translated = translate_six_frames(&synth.genome, GeneticCode::standard());
    let frames_bank = translated.to_bank();
    let blast = tblastn(&proteins, &frames_bank, blosum62(), &BlastConfig::default());

    // Map baseline HSPs to genomic intervals.
    let blast_intervals: Vec<(usize, usize, usize)> = blast
        .hsps
        .iter()
        .map(|h| {
            let frame = Frame::ALL[h.seq1 as usize];
            let (s, e, _) = translated.to_genome_interval(
                FrameCoord {
                    frame,
                    aa_pos: h.start1 as usize,
                },
                (h.end1 - h.start1) as usize,
            );
            (h.seq0 as usize, s, e)
        })
        .collect();

    for plant in &synth.plants {
        let pipe_found = pipe.matches.iter().any(|m| {
            m.protein_idx == plant.protein_idx
                && m.genome_start < plant.end
                && plant.start < m.genome_end
        });
        let blast_found = blast_intervals
            .iter()
            .any(|&(q, s, e)| q == plant.protein_idx && s < plant.end && plant.start < e);
        assert!(pipe_found, "pipeline missed plant {plant:?}");
        assert!(blast_found, "baseline missed plant {plant:?}");
    }
}

#[test]
fn baseline_profile_is_scan_heavy() {
    // The baseline spends its effort scanning + extending, mirroring
    // why the paper could not just accelerate BLAST as-is. Asserted on
    // the deterministic work counters, not wall-clock splits (which are
    // noisy under CI load).
    let proteins = random_bank(&BankConfig {
        count: 10,
        min_len: 100,
        max_len: 200,
        seed: 601,
    });
    let synth = generate_genome(
        &GenomeConfig {
            len: 30_000,
            gene_count: 5,
            seed: 602,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    let translated = translate_six_frames(&synth.genome, GeneticCode::standard());
    let report = tblastn(
        &proteins,
        &translated.to_bank(),
        blosum62(),
        &BlastConfig::default(),
    );
    // The scan examines far more word hits than the lookup has entries
    // to build: dictionary construction is O(query residues), the scan
    // is O(subject residues × hit density). >10 hits per query residue
    // pins the scan-heavy shape without touching the clock.
    let query_residues: u64 = report.search_space.0 as u64;
    assert!(report.word_hits > 10 * query_residues);
    // And the extension funnel narrows: word hits ⊇ ungapped ⊇ gapped.
    assert!(report.word_hits >= report.ungapped_extensions);
    assert!(report.ungapped_extensions >= report.gapped_extensions);
    assert!(report.gapped_extensions > 0);
    // Wall clock is still recorded, just not compared.
    assert!(report.scan_seconds > 0.0);
}
