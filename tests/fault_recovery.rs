//! Pipeline-level fault-recovery guarantees: any fault plan the board
//! can express must leave the pipeline's final output bit-identical to
//! the fault-free run (recovery restores every faulted entry), fault
//! activity must surface in the run report, and exhausted recovery must
//! surface as [`PipelineError::BoardFault`] — never a panic or hang.

use std::sync::LazyLock;

use proptest::prelude::*;
use psc_core::{
    build_run_report, MemRecorder, Pipeline, PipelineConfig, PipelineError, PipelineOutput,
    Step2Backend,
};
use psc_datagen::{random_bank, BankConfig};
use psc_rasc::{FaultKind, FaultPlan, FaultSpec, RecoveryPolicy};
use psc_score::blosum62;
use psc_seqio::Bank;

fn banks() -> (Bank, Bank) {
    let b0 = random_bank(&BankConfig {
        count: 10,
        min_len: 80,
        max_len: 150,
        seed: 1101,
    });
    let b1 = random_bank(&BankConfig {
        count: 8,
        min_len: 80,
        max_len: 150,
        seed: 1102,
    });
    (b0, b1)
}

fn rasc_config(host_threads: usize) -> PipelineConfig {
    PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads,
        },
        n_ctx: 8,
        threshold: 22,
        max_evalue: 10.0,
        ..PipelineConfig::default()
    }
}

fn hybrid_config() -> PipelineConfig {
    PipelineConfig {
        backend: Step2Backend::Hybrid {
            pe_count: 64,
            cpu_threads: 2,
            fpga_share: 0.5,
        },
        n_ctx: 8,
        threshold: 22,
        max_evalue: 10.0,
        ..PipelineConfig::default()
    }
}

/// The fault-free RASC reference everything is compared against.
static BASELINE: LazyLock<PipelineOutput> = LazyLock::new(|| {
    let (b0, b1) = banks();
    Pipeline::new(rasc_config(1)).run(&b0, &b1, blosum62())
});

#[test]
fn baseline_has_work_to_corrupt() {
    let board = BASELINE.board.as_ref().expect("rasc run has a board");
    assert!(board.entries > 0);
    assert!(board.hit_count > 0);
    assert!(!BASELINE.hsps.is_empty());
}

#[test]
fn degraded_run_is_bit_identical_and_reported() {
    let (b0, b1) = banks();
    let cfg = PipelineConfig {
        // Entry 1 never recovers on FPGA 0: 3 retries, then software.
        // DmaCorrupt is caught on every attempt regardless of how many
        // hits the shard produces.
        fault_plan: Some(FaultPlan::Scripted(vec![FaultSpec {
            entry: 1,
            fpga: Some(0),
            board: None,
            kind: FaultKind::DmaCorrupt,
            attempts: u32::MAX,
        }])),
        ..rasc_config(2)
    };
    let rec = MemRecorder::new();
    let out = Pipeline::new(cfg.clone())
        .try_run_recorded(&b0, &b1, blosum62(), &rec)
        .unwrap();
    assert_eq!(out.hsps, BASELINE.hsps);
    assert_eq!(out.stats.step2, BASELINE.stats.step2);
    let board = out.board.as_ref().unwrap();
    assert_eq!(board.faults.entries_degraded, 1);
    assert_eq!(board.faults.retries, 3);
    // The counters flow through the run report and survive JSON.
    let report = build_run_report(&out, &cfg, &rec.snapshot());
    assert_eq!(report.counter("step2.entries_degraded"), Some(1));
    assert_eq!(report.counter("step2.fault_retries"), Some(3));
    assert!(report.counter("step2.faults_detected").unwrap() >= 4);
    let back = psc_core::RunReport::parse(&report.to_json_string()).unwrap();
    assert_eq!(report, back);
    assert_eq!(back.board.unwrap().faults.recovery.entries_degraded, 1);
}

#[test]
fn exhausted_recovery_surfaces_as_pipeline_error() {
    let (b0, b1) = banks();
    for host_threads in [1, 2] {
        let cfg = PipelineConfig {
            fault_plan: Some(FaultPlan::Scripted(vec![FaultSpec {
                entry: 0,
                fpga: None,
                board: None,
                kind: FaultKind::DmaCorrupt,
                attempts: u32::MAX,
            }])),
            recovery: RecoveryPolicy {
                degrade: false,
                ..RecoveryPolicy::default()
            },
            ..rasc_config(host_threads)
        };
        let err = Pipeline::new(cfg)
            .try_run(&b0, &b1, blosum62())
            .unwrap_err();
        match err {
            PipelineError::BoardFault(bf) => {
                assert_eq!(bf.entry, 0, "host_threads={host_threads}");
                assert_eq!(bf.kind, FaultKind::DmaCorrupt);
                assert_eq!(bf.attempts, 4, "default budget is 3 retries");
            }
            other => panic!("expected BoardFault, got {other:?}"),
        }
    }
}

#[test]
fn hybrid_backend_recovers_losslessly_too() {
    let (b0, b1) = banks();
    let clean = Pipeline::new(hybrid_config()).run(&b0, &b1, blosum62());
    let faulty = Pipeline::new(PipelineConfig {
        fault_plan: Some(FaultPlan::seeded(5)),
        ..hybrid_config()
    })
    .run(&b0, &b1, blosum62());
    assert_eq!(clean.hsps, faulty.hsps);
    assert_eq!(clean.stats.step2, faulty.stats.step2);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any seeded plan, at any rate up to "every dispatch faults",
    /// yields bit-identical pipeline output (candidates, HSPs, stats).
    #[test]
    fn any_seeded_plan_is_lossless(seed in any::<u64>(), rate_ppm in 0u32..=1_000_000) {
        let (b0, b1) = banks();
        let out = Pipeline::new(PipelineConfig {
            fault_plan: Some(FaultPlan::Seeded { seed, rate_ppm }),
            ..rasc_config(2)
        })
        .run(&b0, &b1, blosum62());
        prop_assert_eq!(&out.hsps, &BASELINE.hsps);
        prop_assert_eq!(out.stats.step2, BASELINE.stats.step2);
        let (board, base) = (out.board.unwrap(), BASELINE.board.as_ref().unwrap());
        prop_assert_eq!(board.entries, base.entries);
        // Degraded entries bypass the result link, everything else
        // matches the fault-free hit traffic.
        prop_assert!(board.hit_count <= base.hit_count);
    }

    /// The step-2 SIMD tile telemetry's closed form equals the length
    /// of the tile walk the hot loop actually performs.
    #[test]
    fn simd_tile_count_matches_walk(
        n0 in 0usize..3000,
        n1 in 0usize..30_000,
        l in 1usize..4096,
    ) {
        let walked = psc_core::step2::simd_tile_walk(n0, n1, l).count() as u64;
        prop_assert_eq!(psc_core::step2::simd_tile_count(n0, n1, l), walked);
    }
}
