//! Determinism guarantees: identical inputs and configuration produce
//! identical outputs — across repeated runs, across backends, and across
//! thread counts. This is what makes the simulated-hardware numbers in
//! EXPERIMENTS.md reproducible statements rather than measurements.

use psc_core::{search_genome, search_genome_recorded, MemRecorder, PipelineConfig, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig};
use psc_score::blosum62;

fn workload() -> (psc_seqio::Bank, psc_seqio::Seq) {
    let proteins = random_bank(&BankConfig {
        count: 15,
        min_len: 80,
        max_len: 160,
        seed: 313,
    });
    let genome = generate_genome(
        &GenomeConfig {
            len: 25_000,
            gene_count: 6,
            repeat_tracts: 3,
            seed: 314,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    (proteins, genome.genome)
}

#[test]
fn repeated_runs_identical() {
    let (proteins, genome) = workload();
    let run = || search_genome(&proteins, &genome, blosum62(), PipelineConfig::default());
    let a = run();
    let b = run();
    assert_eq!(a.output.hsps, b.output.hsps);
    assert_eq!(a.output.stats.step2, b.output.stats.step2);
    assert_eq!(a.matches.len(), b.matches.len());
}

#[test]
fn telemetry_recording_does_not_change_results() {
    // An instrumented run (in-memory recorder) must be bit-identical to
    // the default run (null recorder): recording only observes.
    let (proteins, genome) = workload();
    let cfg = || PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads: 2,
        },
        ..PipelineConfig::default()
    };
    let plain = search_genome(&proteins, &genome, blosum62(), cfg());
    let rec = MemRecorder::new();
    let recorded = search_genome_recorded(&proteins, &genome, blosum62(), cfg(), &rec);
    assert_eq!(plain.output.hsps, recorded.output.hsps);
    assert_eq!(plain.output.stats.step2, recorded.output.stats.step2);
    assert_eq!(plain.output.stats.anchors, recorded.output.stats.anchors);
    assert_eq!(plain.matches.len(), recorded.matches.len());
    let (pb, rb) = (plain.output.board.unwrap(), recorded.output.board.unwrap());
    assert_eq!(pb.fpga_cycles, rb.fpga_cycles);
    assert_eq!(pb.stall_cycles, rb.stall_cycles);
    assert_eq!(pb.fifo_peak, rb.fifo_peak);
    // And the recorder actually saw the run.
    let snap = rec.snapshot();
    assert_eq!(
        snap.counters.get("step2.pairs").copied(),
        Some(recorded.output.stats.step2.pairs)
    );
    assert!(snap.spans.contains_key("step2.wall"));
}

#[test]
fn board_numbers_independent_of_host_threads() {
    let (proteins, genome) = workload();
    let run = |host_threads: usize| {
        search_genome(
            &proteins,
            &genome,
            blosum62(),
            PipelineConfig {
                backend: Step2Backend::Rasc {
                    pe_count: 128,
                    fpga_count: 2,
                    host_threads,
                },
                ..PipelineConfig::default()
            },
        )
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one.output.hsps, four.output.hsps);
    let b1 = one.output.board.unwrap();
    let b4 = four.output.board.unwrap();
    assert_eq!(b1.fpga_cycles, b4.fpga_cycles);
    assert_eq!(b1.stall_cycles, b4.stall_cycles);
    assert_eq!(b1.bytes_in, b4.bytes_in);
    assert_eq!(b1.bytes_out, b4.bytes_out);
    assert!((b1.accelerated_seconds - b4.accelerated_seconds).abs() < 1e-12);
}

#[test]
fn stripped_run_reports_are_byte_identical() {
    // The full telemetry artifact — counters, histograms, per-key
    // distributions, simulated board seconds, metadata — must serialize
    // to byte-identical JSON across runs once the wall-clock fields
    // (the only honest nondeterminism) are zeroed. This pins the report
    // pipeline end to end: recorder → snapshot → RunReport → JSON.
    let (proteins, genome) = workload();
    let run = || {
        let cfg = PipelineConfig {
            backend: Step2Backend::Rasc {
                pe_count: 64,
                fpga_count: 2,
                host_threads: 2,
            },
            ..PipelineConfig::default()
        };
        let rec = MemRecorder::new();
        let result = search_genome_recorded(&proteins, &genome, blosum62(), cfg.clone(), &rec);
        let mut report = psc_core::build_run_report(&result.output, &cfg, &rec.snapshot());
        report.strip_wall_clock();
        report.to_json_string()
    };
    let a = run();
    let b = run();
    assert!(a.contains("step2.pairs"), "report lost its counters");
    assert_eq!(a, b, "stripped run reports must be byte-identical");
}

#[test]
fn masking_is_deterministic_and_recall_preserving() {
    let (proteins, genome) = workload();
    let masked_cfg = || PipelineConfig {
        mask: Some(psc_seqio::MaskConfig::default()),
        ..PipelineConfig::default()
    };
    let a = search_genome(&proteins, &genome, blosum62(), masked_cfg());
    let b = search_genome(&proteins, &genome, blosum62(), masked_cfg());
    assert_eq!(a.output.hsps, b.output.hsps);
    // Every unmasked match's protein is still matched when masking.
    let plain = search_genome(&proteins, &genome, blosum62(), PipelineConfig::default());
    for m in &plain.matches {
        assert!(
            a.matches.iter().any(|x| x.protein_idx == m.protein_idx
                && x.genome_start < m.genome_end
                && m.genome_start < x.genome_end),
            "masking lost {m:?}"
        );
    }
}
