//! The central correctness claim of the reproduction: the simulated
//! RASC-100 backend produces *exactly* the results of the software
//! pipeline — same candidates, same alignments — on a realistic
//! workload, at every published PE-array size.

use psc_core::{search_genome, PipelineConfig, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig};
use psc_score::blosum62;

fn workload() -> (psc_seqio::Bank, psc_seqio::Seq) {
    let proteins = random_bank(&BankConfig {
        count: 12,
        min_len: 80,
        max_len: 160,
        seed: 77,
    });
    let genome = generate_genome(
        &GenomeConfig {
            len: 30_000,
            gene_count: 8,
            mutation: MutationConfig {
                divergence: 0.25,
                indel_rate: 0.004,
                indel_extend: 0.3,
            },
            seed: 78,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    (proteins, genome.genome)
}

#[test]
fn rasc_backend_matches_software_at_all_array_sizes() {
    let (proteins, genome) = workload();
    let software = search_genome(&proteins, &genome, blosum62(), PipelineConfig::default());
    assert!(!software.output.hsps.is_empty());
    for pe_count in [64, 128, 192] {
        let rasc = search_genome(
            &proteins,
            &genome,
            blosum62(),
            PipelineConfig {
                backend: Step2Backend::Rasc {
                    pe_count,
                    fpga_count: 1,
                    host_threads: 4,
                },
                ..PipelineConfig::default()
            },
        );
        assert_eq!(
            software.output.hsps, rasc.output.hsps,
            "HSPs diverged at {pe_count} PEs"
        );
        assert_eq!(
            software.output.stats.step2, rasc.output.stats.step2,
            "step-2 stats diverged at {pe_count} PEs"
        );
        let board = rasc.output.board.expect("board report present");
        assert_eq!(board.hit_count, rasc.output.stats.step2.candidates);
        assert!(board.fpga_cycles[0] > 0);
    }
}

#[test]
fn more_pes_fewer_cycles() {
    // Scaling shape of paper Table 4: hardware time falls as the array
    // grows, sublinearly (fill/drain and partial batches). Array size
    // only matters when index lists are long enough to fill batches, so
    // this test pairs a large bank with a deliberately coarse seed —
    // with the default seed at this scale, bigger arrays only add slot
    // overhead, which is itself the paper's small-bank observation.
    use psc_core::SeedChoice;
    use psc_index::seed::{murphy15, SubsetSeed};
    let proteins = random_bank(&BankConfig {
        count: 300,
        min_len: 100,
        max_len: 250,
        seed: 171,
    });
    let genome = generate_genome(
        &GenomeConfig {
            len: 30_000,
            gene_count: 0,
            seed: 172,
            ..GenomeConfig::default()
        },
        &psc_seqio::Bank::new(),
    );
    let coarse_seed = || SeedChoice::Custom(SubsetSeed::new(vec![murphy15(), murphy15()]));
    let cycles_at = |pe_count: usize| -> u64 {
        let r = search_genome(
            &proteins,
            &genome.genome,
            blosum62(),
            PipelineConfig {
                seed: coarse_seed(),
                backend: Step2Backend::Rasc {
                    pe_count,
                    fpga_count: 1,
                    host_threads: 8,
                },
                ..PipelineConfig::default()
            },
        );
        r.output.board.unwrap().fpga_cycles[0]
    };
    let c64 = cycles_at(64);
    let c128 = cycles_at(128);
    let c192 = cycles_at(192);
    assert!(c64 > c128, "64→128 PEs must reduce cycles: {c64} vs {c128}");
    assert!(
        c128 > c192,
        "128→192 PEs must reduce cycles: {c128} vs {c192}"
    );
    // Sublinear: 3× the PEs cannot give 3× the speed.
    assert!(
        (c64 as f64 / c192 as f64) < 3.0,
        "scaling should be sublinear: {c64} vs {c192}"
    );
}

#[test]
fn two_fpgas_same_answers_faster_hardware() {
    let (proteins, genome) = workload();
    let run = |fpga_count: usize| {
        search_genome(
            &proteins,
            &genome,
            blosum62(),
            PipelineConfig {
                backend: Step2Backend::Rasc {
                    pe_count: 192,
                    fpga_count,
                    host_threads: 4,
                },
                ..PipelineConfig::default()
            },
        )
    };
    let one = run(1);
    let two = run(2);
    assert_eq!(one.output.hsps, two.output.hsps);
    let b1 = one.output.board.unwrap();
    let b2 = two.output.board.unwrap();
    let worst1 = *b1.fpga_cycles.iter().max().unwrap();
    let worst2 = *b2.fpga_cycles.iter().max().unwrap();
    assert!(
        worst2 < worst1,
        "dual-FPGA hardware should be faster: {worst1} vs {worst2}"
    );
    assert!(b2.sync_seconds > 0.0, "dual-FPGA runs pay synchronisation");
}
