//! Flight-recorder guarantees at pipeline level: virtual-clock traces
//! are byte-deterministic across thread counts and backends, tracing
//! never changes pipeline output (fault plans and `--overlap`
//! included), wall-clock traces reconcile against the run report, and
//! every lane's time is exhaustively attributed
//! (`busy + stalls == lane wall`).

use psc_core::{
    build_run_report, MemRecorder, NullRecorder, Pipeline, PipelineConfig, PipelineOutput,
    RingTracer, Step2Backend, TraceClock,
};
use psc_datagen::{random_bank, BankConfig};
use psc_rasc::FaultPlan;
use psc_score::blosum62;
use psc_seqio::Bank;
use psc_telemetry::{analyze, reconcile, render_analysis, Trace};

fn banks() -> (Bank, Bank) {
    let b0 = random_bank(&BankConfig {
        count: 10,
        min_len: 80,
        max_len: 150,
        seed: 2201,
    });
    let b1 = random_bank(&BankConfig {
        count: 8,
        min_len: 80,
        max_len: 150,
        seed: 2202,
    });
    (b0, b1)
}

fn base_config() -> PipelineConfig {
    PipelineConfig {
        n_ctx: 8,
        threshold: 22,
        max_evalue: 10.0,
        ..PipelineConfig::default()
    }
}

fn run_traced(cfg: PipelineConfig, tracer: &RingTracer) -> (PipelineOutput, Trace) {
    let (b0, b1) = banks();
    let out = Pipeline::new(cfg)
        .try_run_traced(&b0, &b1, blosum62(), &NullRecorder, tracer)
        .unwrap();
    (out, tracer.finish(&[]))
}

/// The virtual clock models scheduled work, not measured time, so the
/// exported trace (and its analysis) must be byte-identical across
/// worker counts, schedules, and overlap modes.
#[test]
fn virtual_trace_is_byte_deterministic_across_thread_counts() {
    let variant = |threads: usize, step3_threads: usize, overlap: bool| {
        let tracer = RingTracer::new(TraceClock::Virtual);
        let cfg = PipelineConfig {
            backend: Step2Backend::SoftwareParallel { threads },
            step3_threads,
            overlap,
            ..base_config()
        };
        let (_, trace) = run_traced(cfg, &tracer);
        (trace.to_chrome_string(), render_analysis(&analyze(&trace)))
    };
    let (chrome, analysis) = variant(1, 1, false);
    assert!(chrome.contains("psc-trace-1"));
    for (threads, step3_threads, overlap) in
        [(2, 2, false), (4, 3, false), (2, 2, true), (4, 1, true)]
    {
        let (c, a) = variant(threads, step3_threads, overlap);
        assert_eq!(
            chrome, c,
            "virtual trace changed at threads={threads} step3={step3_threads} overlap={overlap}"
        );
        assert_eq!(analysis, a, "virtual analysis changed");
    }
}

/// The simulated board runs on its own deterministic clock, so its
/// lanes are byte-stable even under a seeded fault plan.
#[test]
fn virtual_board_lanes_are_deterministic() {
    let variant = |host_threads: usize| {
        let tracer = RingTracer::new(TraceClock::Virtual);
        let cfg = PipelineConfig {
            backend: Step2Backend::Rasc {
                pe_count: 64,
                fpga_count: 2,
                host_threads,
            },
            fault_plan: Some(FaultPlan::seeded(5)),
            ..base_config()
        };
        run_traced(cfg, &tracer).1.to_chrome_string()
    };
    let a = variant(1);
    assert!(a.contains("board.compute.fpga0"));
    assert_eq!(a, variant(2));
}

/// Tracing only observes: output (HSPs, counters, board fault
/// telemetry) is identical with the flight recorder on or off, for
/// every backend, with faults, and with the overlapped pipeline.
#[test]
fn tracing_does_not_change_pipeline_output() {
    let (b0, b1) = banks();
    let configs = [
        PipelineConfig {
            backend: Step2Backend::SoftwareParallel { threads: 2 },
            step3_threads: 2,
            overlap: true,
            ..base_config()
        },
        PipelineConfig {
            backend: Step2Backend::Rasc {
                pe_count: 64,
                fpga_count: 2,
                host_threads: 2,
            },
            fault_plan: Some(FaultPlan::seeded(5)),
            ..base_config()
        },
        PipelineConfig {
            backend: Step2Backend::Hybrid {
                pe_count: 64,
                cpu_threads: 2,
                fpga_share: 0.5,
            },
            overlap: true,
            ..base_config()
        },
    ];
    for (i, cfg) in configs.into_iter().enumerate() {
        let plain = Pipeline::new(cfg.clone())
            .try_run(&b0, &b1, blosum62())
            .unwrap();
        for clock in [TraceClock::Wall, TraceClock::Virtual] {
            let tracer = RingTracer::new(clock);
            let traced = Pipeline::new(cfg.clone())
                .try_run_traced(&b0, &b1, blosum62(), &NullRecorder, &tracer)
                .unwrap();
            assert_eq!(plain.hsps, traced.hsps, "config {i} clock {clock:?}");
            assert_eq!(plain.stats.step2, traced.stats.step2);
            assert_eq!(plain.stats.anchors, traced.stats.anchors);
            assert_eq!(plain.stats.reported, traced.stats.reported);
            if let (Some(pb), Some(tb)) = (&plain.board, &traced.board) {
                assert_eq!(pb.hit_count, tb.hit_count);
                assert_eq!(pb.fpga_cycles, tb.fpga_cycles);
                assert_eq!(pb.faults, tb.faults);
            }
        }
    }
}

/// Wall-clock traces must reconcile with the run report: the step-3
/// extend spans and merge wait are the very same measurements the
/// report sums, and step-2 busy is bounded by the report's step-2 wall.
#[test]
fn wall_trace_reconciles_with_run_report() {
    let (b0, b1) = banks();
    let cfg = PipelineConfig {
        backend: Step2Backend::SoftwareParallel { threads: 2 },
        step3_threads: 2,
        ..base_config()
    };
    let rec = MemRecorder::new();
    let tracer = RingTracer::new(TraceClock::Wall);
    let out = Pipeline::new(cfg.clone())
        .try_run_traced(&b0, &b1, blosum62(), &rec, &tracer)
        .unwrap();
    let report = build_run_report(&out, &cfg, &rec.snapshot());
    let analysis = analyze(&tracer.finish(&[]));
    let rows = reconcile(&analysis, &report);
    assert!(rows.len() >= 3, "expected step2/step3 rows, got {rows:?}");
    for row in &rows {
        assert!(row.ok, "reconciliation failed: {row:?}");
    }
}

/// Every non-busy second of every lane lands in a named stall class:
/// `busy + stalls == lane wall`, enforced on a real traced run with
/// faults, overlap, and parallel step 3 (the richest stall mix).
#[test]
fn stall_attribution_is_exhaustive() {
    let tracer = RingTracer::new(TraceClock::Wall);
    let cfg = PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads: 2,
        },
        step3_threads: 2,
        overlap: true,
        fault_plan: Some(FaultPlan::seeded(5)),
        ..base_config()
    };
    let (_, trace) = run_traced(cfg, &tracer);
    let analysis = analyze(&trace);
    assert!(
        analysis.lanes.len() >= 4,
        "lanes: {:?}",
        analysis.lanes.len()
    );
    for lane in &analysis.lanes {
        let err = (lane.accounted_us() - lane.wall_us).abs();
        assert!(
            err <= 1e-6 * lane.wall_us.max(1.0),
            "lane {} leaks time: busy {} + stalls {} != wall {}",
            lane.name,
            lane.busy_us,
            lane.stall_us(),
            lane.wall_us
        );
    }
    // Timestamps are monotonic within each exported lane.
    for lane in &trace.lanes {
        for w in lane.spans.windows(2) {
            assert!(
                w[0].start_us <= w[1].start_us,
                "lane {} spans out of order",
                lane.name
            );
        }
    }
}

/// The per-stage rings drop oldest-first under pressure and say so in
/// the export; a clipped trace still parses and analyzes.
#[test]
fn ring_overflow_drops_oldest_and_counts() {
    // Bigger banks and a two-slot ring so step 3 commits far more
    // shard units than the ring holds.
    let b0 = random_bank(&BankConfig {
        count: 24,
        min_len: 100,
        max_len: 220,
        seed: 2203,
    });
    let b1 = random_bank(&BankConfig {
        count: 20,
        min_len: 100,
        max_len: 220,
        seed: 2204,
    });
    let tracer = RingTracer::with_capacity(TraceClock::Wall, 2);
    let cfg = PipelineConfig {
        backend: Step2Backend::SoftwareParallel { threads: 2 },
        step3_threads: 2,
        ..base_config()
    };
    let out = Pipeline::new(cfg)
        .try_run_traced(&b0, &b1, blosum62(), &NullRecorder, &tracer)
        .unwrap();
    assert!(out.stats.anchors > 0);
    let trace = tracer.finish(&[]);
    assert!(
        trace.dropped > 0,
        "tiny rings must overflow on this workload"
    );
    assert_eq!(trace.dropped, tracer.dropped());
    let text = trace.to_chrome_string();
    let back = Trace::from_chrome_str(&text).unwrap();
    assert_eq!(back.dropped, trace.dropped);
    let analysis = analyze(&back);
    assert_eq!(analysis.dropped, trace.dropped);
    // The survivors are the newest units: the retained step-3 spans are
    // the last shards, so their hull ends where the full run ends.
    assert!(analysis.lanes.iter().any(|l| l.stage == "step3"));
}
