//! The overlapped streaming pipeline is an *optimisation*, never a
//! semantic change: for every backend, thread count, and fault plan,
//! `--overlap` + `--step3-threads N` must reproduce the sequential
//! barrier run bit for bit — same HSPs, same counters, and a
//! byte-identical stripped run-report JSON. This is the acceptance gate
//! for the streamed execution mode.

use psc_align::Hsp;
use psc_core::{search_genome_recorded, MemRecorder, PipelineConfig, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig};
use psc_score::blosum62;

fn workload() -> (psc_seqio::Bank, psc_seqio::Seq) {
    let proteins = random_bank(&BankConfig {
        count: 10,
        min_len: 80,
        max_len: 150,
        seed: 811,
    });
    let genome = generate_genome(
        &GenomeConfig {
            len: 15_000,
            gene_count: 5,
            repeat_tracts: 2,
            seed: 812,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    (proteins, genome.genome)
}

/// One full recorded run: HSPs + step stats + the stripped report JSON.
fn run(
    proteins: &psc_seqio::Bank,
    genome: &psc_seqio::Seq,
    cfg: PipelineConfig,
) -> (Vec<Hsp>, psc_core::PipelineStats, String) {
    let rec = MemRecorder::new();
    let result = search_genome_recorded(proteins, genome, blosum62(), cfg.clone(), &rec);
    let mut report = psc_core::build_run_report(&result.output, &cfg, &rec.snapshot());
    report.strip_wall_clock();
    (
        result.output.hsps,
        result.output.stats,
        report.to_json_string(),
    )
}

/// Assert every (overlap, step3_threads) combination reproduces the
/// sequential barrier baseline byte for byte.
fn assert_equivalent(base_cfg: PipelineConfig) {
    let (proteins, genome) = workload();
    let barrier = run(
        &proteins,
        &genome,
        PipelineConfig {
            overlap: false,
            step3_threads: 1,
            ..base_cfg.clone()
        },
    );
    assert!(
        barrier.2.contains("step3.shards"),
        "report lost the shard counter"
    );
    for (overlap, step3_threads) in [(false, 2), (false, 8), (true, 1), (true, 2), (true, 8)] {
        let variant = run(
            &proteins,
            &genome,
            PipelineConfig {
                overlap,
                step3_threads,
                ..base_cfg.clone()
            },
        );
        assert_eq!(
            barrier.0, variant.0,
            "HSPs diverged (overlap={overlap}, step3_threads={step3_threads})"
        );
        assert_eq!(
            barrier.1, variant.1,
            "stats diverged (overlap={overlap}, step3_threads={step3_threads})"
        );
        assert_eq!(
            barrier.2, variant.2,
            "stripped report diverged (overlap={overlap}, step3_threads={step3_threads})"
        );
    }
}

#[test]
fn software_scalar_overlap_matches_barrier() {
    assert_equivalent(PipelineConfig::default());
}

#[test]
fn software_parallel_overlap_matches_barrier() {
    assert_equivalent(PipelineConfig {
        backend: Step2Backend::SoftwareParallel { threads: 3 },
        ..PipelineConfig::default()
    });
}

#[test]
fn rasc_overlap_matches_barrier() {
    assert_equivalent(PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads: 2,
        },
        ..PipelineConfig::default()
    });
}

#[test]
fn hybrid_overlap_matches_barrier() {
    assert_equivalent(PipelineConfig {
        backend: Step2Backend::Hybrid {
            pe_count: 64,
            cpu_threads: 2,
            fpga_share: 0.5,
        },
        ..PipelineConfig::default()
    });
}

#[test]
fn seeded_faults_overlap_matches_barrier() {
    assert_equivalent(PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads: 2,
        },
        fault_plan: Some(psc_rasc::FaultPlan::Seeded {
            seed: 97,
            rate_ppm: 250_000,
        }),
        ..PipelineConfig::default()
    });
}

#[test]
fn heavy_tail_faults_overlap_matches_barrier() {
    assert_equivalent(PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads: 2,
        },
        fault_plan: Some(psc_rasc::FaultPlan::SeededHeavyTail {
            seed: 97,
            rate_ppm: 250_000,
        }),
        ..PipelineConfig::default()
    });
}
