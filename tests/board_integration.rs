//! Board-level behaviours the paper reports: the §4.1 result-traffic
//! pathology and its raised-threshold workaround, and resource limits.

use psc_align::Kernel;
use psc_rasc::{BoardConfig, Entry, OperatorConfig, RascBoard, ResourceModel};
use psc_score::blosum62;

/// A workload in which every pair scores above a low threshold —
/// maximal result traffic.
fn flood_entries(n_entries: usize, k0: usize, k1: usize, l: usize) -> Vec<Entry> {
    (0..n_entries)
        .map(|_| Entry {
            il0: vec![0u8; k0 * l], // all-alanine windows, identical
            il1: vec![0u8; k1 * l],
        })
        .collect()
}

fn operator(threshold: i32, fifo_capacity: usize) -> OperatorConfig {
    let mut op = OperatorConfig::new(64);
    op.window_len = 20;
    op.threshold = threshold;
    op.fifo_capacity = fifo_capacity;
    op.kernel = Kernel::ClampedSum;
    op
}

#[test]
fn result_flood_stalls_the_array() {
    // Identical all-A windows self-score 4×20 = 80 ≫ threshold 10.
    let board = RascBoard::new(BoardConfig::new(operator(10, 16), 1), blosum62()).unwrap();
    let (hits, report) = board.run_workload(&flood_entries(4, 64, 32, 20)).unwrap();
    let total: usize = hits.iter().map(Vec::len).sum();
    assert_eq!(total, 4 * 64 * 32, "every pair must be reported");
    assert!(
        report.stall_cycles[0] > 0,
        "tiny FIFOs under flood must backpressure"
    );
}

#[test]
fn raising_the_threshold_restores_throughput() {
    // The paper's workaround (§4.1): a higher ungapped threshold lightens
    // host traffic without reducing the computation performed.
    let flood = RascBoard::new(BoardConfig::new(operator(10, 16), 1), blosum62()).unwrap();
    let quiet = RascBoard::new(BoardConfig::new(operator(1000, 16), 1), blosum62()).unwrap();
    let work = flood_entries(4, 64, 32, 20);
    let (_, rf) = flood.run_workload(&work).unwrap();
    let (hq, rq) = quiet.run_workload(&work).unwrap();
    assert_eq!(rq.stall_cycles[0], 0);
    assert!(hq.iter().all(Vec::is_empty));
    assert!(rf.fpga_cycles[0] > rq.fpga_cycles[0]);
    // Same scoring work either way (the paper: "this modification does
    // not reduce the amount of calculation").
    assert_eq!(rf.busy_pe_cycles[0], rq.busy_pe_cycles[0]);
    assert!(rf.bytes_out > rq.bytes_out);
}

#[test]
fn dual_fpga_speedup_grows_with_workload() {
    // Table 3's shape: tiny workloads barely profit from the second
    // FPGA (fixed sync/setup dominates); larger ones approach 2×.
    // Test workloads are far smaller than the experiments', so scale the
    // one-time bitstream-load cost down with them (it is < 1 % of any
    // real run); the per-entry sync and transfer costs stay as-is.
    let board = |fpgas: usize| {
        let mut cfg = BoardConfig::new(operator(1000, 64), fpgas);
        cfg.dma.bitstream_load = 0.02;
        RascBoard::new(cfg, blosum62()).unwrap()
    };
    let speedup_for = |n_entries: usize| -> f64 {
        let work = flood_entries(n_entries, 128, 64, 20);
        let t1 = board(1).run_workload(&work).unwrap().1.accelerated_seconds;
        let t2 = board(2).run_workload(&work).unwrap().1.accelerated_seconds;
        t1 / t2
    };
    let small = speedup_for(20);
    let large = speedup_for(2000);
    assert!(
        small < large,
        "speedup must grow with workload: {small:.3} vs {large:.3}"
    );
    assert!(
        large <= 2.0 + 1e-9,
        "cannot beat 2× with 2 FPGAs: {large:.3}"
    );
    assert!(large > 1.2, "large workloads should profit: {large:.3}");
}

#[test]
fn published_arrays_fit_with_headroom() {
    for pes in [64, 128, 192] {
        let mut op = OperatorConfig::new(pes);
        op.window_len = 60;
        let u = ResourceModel::check(&op).expect("published build must fit");
        assert!(u.slice_pct < 95, "{pes} PEs at {}% slices", u.slice_pct);
    }
    // And the model still rejects absurdity.
    let mut op = OperatorConfig::new(1024);
    op.window_len = 60;
    assert!(ResourceModel::check(&op).is_err());
}
