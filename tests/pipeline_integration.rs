//! End-to-end pipeline integration: planted-homology recovery, profile
//! sanity, and the step-2 dominance that motivates the whole paper.

use psc_core::{search_genome, PipelineConfig, Step2Backend};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig, MutationConfig};
use psc_score::blosum62;

fn workload() -> (psc_seqio::Bank, psc_datagen::SyntheticGenome) {
    let proteins = random_bank(&BankConfig {
        count: 20,
        min_len: 80,
        max_len: 200,
        seed: 2024,
    });
    let genome = generate_genome(
        &GenomeConfig {
            len: 60_000,
            gene_count: 15,
            mutation: MutationConfig {
                divergence: 0.2,
                indel_rate: 0.003,
                indel_extend: 0.3,
            },
            seed: 2025,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    (proteins, genome)
}

#[test]
fn recovers_every_planted_gene() {
    let (proteins, synth) = workload();
    assert!(synth.plants.len() >= 10, "want a meaningful plant count");
    let result = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig::default(),
    );
    for plant in &synth.plants {
        let found = result.matches.iter().any(|m| {
            m.protein_idx == plant.protein_idx
                && m.forward == plant.forward
                && m.genome_start < plant.end
                && plant.start < m.genome_end
        });
        assert!(found, "plant not recovered: {plant:?}");
    }
}

#[test]
fn no_hallucinated_matches() {
    // Every reported match must overlap *some* plant: the background is
    // random DNA, which should not align at E ≤ 1e-3.
    let (proteins, synth) = workload();
    let result = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig::default(),
    );
    assert!(!result.matches.is_empty());
    for m in &result.matches {
        let on_plant = synth
            .plants
            .iter()
            .any(|p| m.genome_start < p.end && p.start < m.genome_end);
        assert!(on_plant, "match off any plant: {m:?}");
    }
}

#[test]
fn step2_dominates_sequential_profile() {
    // The paper's Table 1: ungapped extension ≈ 97 % of sequential time.
    // Wall-clock shares are noisy under CI load, so the dominance claim
    // is asserted on the deterministic work counters the profile stands
    // on: step 2 scores every index-pair (its work unit), and only a
    // sliver survives to become step-3 anchors — the work funnel the
    // paper offloads.
    let (proteins, synth) = workload();
    let result = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig {
            backend: Step2Backend::SoftwareScalar,
            ..PipelineConfig::default()
        },
    );
    let stats = &result.output.stats;
    assert!(stats.step2.pairs > 0);
    // Step 2's workload dwarfs what it hands to step 3: >100 scored
    // pairs per gapped-extension anchor on this workload (the measured
    // ratio is ~1000:1; 100:1 keeps the test robust to config drift).
    assert!(
        stats.step2.pairs > 100 * stats.anchors.max(1),
        "step 2 should dominate the work profile: {} pairs vs {} anchors",
        stats.step2.pairs,
        stats.anchors
    );
    // And the funnel is monotone: candidates ⊇ anchors, pairs ⊇ candidates.
    assert!(stats.step2.candidates <= stats.step2.pairs);
    assert!(stats.anchors <= stats.step2.candidates);
    // The wall-clock profile is still recorded (sums to ~100 %) even
    // though its split is not asserted.
    let (p1, p2, p3) = result.output.profile.percentages();
    assert!((p1 + p2 + p3 - 100.0).abs() < 1.0, "{p1} {p2} {p3}");
}

#[test]
fn tighter_evalue_reports_less() {
    let (proteins, synth) = workload();
    let loose = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig {
            max_evalue: 1e-3,
            ..PipelineConfig::default()
        },
    );
    let strict = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig {
            max_evalue: 1e-40,
            ..PipelineConfig::default()
        },
    );
    assert!(strict.matches.len() <= loose.matches.len());
    for m in &strict.matches {
        assert!(m.evalue <= 1e-40);
    }
}

#[test]
fn parallel_index_and_step2_match_scalar() {
    let (proteins, synth) = workload();
    let scalar = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig::default(),
    );
    let parallel = search_genome(
        &proteins,
        &synth.genome,
        blosum62(),
        PipelineConfig {
            backend: Step2Backend::SoftwareParallel { threads: 4 },
            index_threads: 4,
            ..PipelineConfig::default()
        },
    );
    assert_eq!(scalar.output.hsps, parallel.output.hsps);
    assert_eq!(scalar.matches.len(), parallel.matches.len());
}
