//! A miniature of the paper's Table 6: both tools evaluated with ROC50
//! and AP-Mean on a family benchmark with constructed ground truth. The
//! paper's claim is *similar* sensitivity/selectivity; we assert both
//! tools clear a floor and land near each other.

use psc_blast::{tblastn, BlastConfig};
use psc_core::{search_genome, PipelineConfig};
use psc_datagen::family::FamilyConfig;
use psc_datagen::MutationConfig;
use psc_quality::{build_benchmark, evaluate_ranked, Benchmark, BenchmarkConfig, RankedHit};
use psc_score::blosum62;
use psc_seqio::{translate_six_frames, Frame, FrameCoord, GeneticCode};

fn small_benchmark() -> Benchmark {
    build_benchmark(&BenchmarkConfig {
        families: FamilyConfig {
            family_count: 10,
            members_per_family: 4,
            min_len: 100,
            max_len: 200,
            mutation: MutationConfig {
                divergence: 0.35,
                indel_rate: 0.008,
                indel_extend: 0.4,
            },
            seed: 9090,
        },
        genome_slack: 2.5,
        seed: 9091,
    })
}

fn pipeline_hits(b: &Benchmark) -> Vec<RankedHit> {
    let result = search_genome(&b.queries, &b.genome, blosum62(), PipelineConfig::default());
    result
        .matches
        .iter()
        .map(|m| RankedHit {
            query: m.protein_idx,
            score: m.bit_score,
            start: m.genome_start,
            end: m.genome_end,
        })
        .collect()
}

fn blast_hits(b: &Benchmark) -> Vec<RankedHit> {
    let translated = translate_six_frames(&b.genome, GeneticCode::standard());
    let frames = translated.to_bank();
    let report = tblastn(&b.queries, &frames, blosum62(), &BlastConfig::default());
    report
        .hsps
        .iter()
        .map(|h| {
            let frame = Frame::ALL[h.seq1 as usize];
            let (s, e, _) = translated.to_genome_interval(
                FrameCoord {
                    frame,
                    aa_pos: h.start1 as usize,
                },
                (h.end1 - h.start1) as usize,
            );
            RankedHit {
                query: h.seq0 as usize,
                score: h.bit_score,
                start: s,
                end: e,
            }
        })
        .collect()
}

#[test]
fn both_tools_score_similarly_on_the_family_benchmark() {
    let b = small_benchmark();
    let pipe = evaluate_ranked(&b, &pipeline_hits(&b));
    let blast = evaluate_ranked(&b, &blast_hits(&b));

    // Floors: at 35% divergence both tools should recover most family
    // structure.
    assert!(pipe.roc50 > 0.5, "pipeline ROC50 too low: {pipe:?}");
    assert!(blast.roc50 > 0.5, "baseline ROC50 too low: {blast:?}");
    assert!(pipe.ap_mean > 0.5, "pipeline AP too low: {pipe:?}");
    assert!(blast.ap_mean > 0.5, "baseline AP too low: {blast:?}");

    // Similarity: the paper reports ROC50 0.468 vs 0.479 and AP 0.447 vs
    // 0.441 — differences of ~0.01. Allow a wider band at our scale.
    assert!(
        (pipe.roc50 - blast.roc50).abs() < 0.15,
        "ROC50 gap too wide: {pipe:?} vs {blast:?}"
    );
    assert!(
        (pipe.ap_mean - blast.ap_mean).abs() < 0.15,
        "AP gap too wide: {pipe:?} vs {blast:?}"
    );
}
