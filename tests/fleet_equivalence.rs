//! Fleet-level determinism guarantees: the multi-board work-stealing
//! dispatcher is an *optimisation*, never a semantic change. For any
//! board count, steal policy, quarantine threshold, host thread count,
//! and fault plan, the merged HSP set, the step counters, and the
//! fleet-neutral stripped run report must be byte-identical to the
//! classic single-board run. A permanently wedged board must be
//! quarantined with all of its entries completing on other boards —
//! without degrading a single entry to host software.

use std::sync::LazyLock;

use proptest::prelude::*;
use psc_align::Hsp;
use psc_core::{
    build_run_report, search_genome_recorded, MemRecorder, PipelineConfig, PipelineStats,
    Step2Backend,
};
use psc_datagen::{generate_genome, random_bank, BankConfig, GenomeConfig};
use psc_rasc::{FaultPlan, FleetConfig, StealPolicy, Topology};
use psc_score::blosum62;

static WORKLOAD: LazyLock<(psc_seqio::Bank, psc_seqio::Seq)> = LazyLock::new(|| {
    let proteins = random_bank(&BankConfig {
        count: 10,
        min_len: 80,
        max_len: 150,
        seed: 2301,
    });
    let genome = generate_genome(
        &GenomeConfig {
            len: 15_000,
            gene_count: 5,
            repeat_tracts: 2,
            seed: 2302,
            ..GenomeConfig::default()
        },
        &proteins,
    );
    (proteins, genome.genome)
});

fn fleet_config(boards: usize, host_threads: usize) -> PipelineConfig {
    PipelineConfig {
        backend: Step2Backend::Rasc {
            pe_count: 64,
            fpga_count: 2,
            host_threads,
        },
        fleet: FleetConfig {
            boards,
            ..FleetConfig::default()
        },
        ..PipelineConfig::default()
    }
}

/// One recorded run reduced to what must be invariant across fleet
/// shapes: the HSPs, the step stats, and the run report with
/// wall-clock, board/accelerator, fleet, and fault telemetry removed
/// (board-salted fault streams legitimately differ per board, and the
/// board section's shape is the fleet size).
fn neutral_run(
    cfg: PipelineConfig,
) -> (
    Vec<Hsp>,
    PipelineStats,
    Option<psc_rasc::FleetReport>,
    String,
) {
    let (proteins, genome) = &*WORKLOAD;
    let rec = MemRecorder::new();
    let result = search_genome_recorded(proteins, genome, blosum62(), cfg.clone(), &rec);
    let mut report = build_run_report(&result.output, &cfg, &rec.snapshot());
    report.strip_wall_clock();
    report.board = None;
    for step in &mut report.steps {
        step.accelerated_seconds = None;
    }
    report.counters.retain(|(k, _)| {
        !k.starts_with("fleet.") && !k.starts_with("step2.fault") && k != "step2.entries_degraded"
    });
    report.spans.retain(|s| !s.name.starts_with("fleet."));
    (
        result.output.hsps,
        result.output.stats,
        result.output.fleet,
        report.to_json_string(),
    )
}

static BASELINE: LazyLock<(Vec<Hsp>, PipelineStats, String)> = LazyLock::new(|| {
    let (hsps, stats, fleet, json) = neutral_run(fleet_config(1, 1));
    assert!(fleet.is_none(), "1 board must use the classic board path");
    (hsps, stats, json)
});

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Any seeded fleet reproduces the 1-board run bit for bit.
    #[test]
    fn any_fleet_matches_the_single_board_run(
        boards in 1usize..=8,
        host_threads in 1usize..=4,
        steal in prop_oneof![Just(StealPolicy::Richest), Just(StealPolicy::None)],
        topology in prop_oneof![Just(Topology::Crossbar), Just(Topology::Ring)],
        quarantine_after in 1u32..=3,
        plan_kind in 0usize..3,
        plan_seed in 0u64..1000,
    ) {
        let plan = match plan_kind {
            0 => None,
            1 => Some(FaultPlan::seeded(plan_seed)),
            _ => Some(FaultPlan::seeded_heavy(plan_seed)),
        };
        let mut cfg = fleet_config(boards, host_threads);
        cfg.fleet.steal_policy = steal;
        cfg.fleet.topology = topology;
        cfg.fleet.quarantine_after = quarantine_after;
        cfg.fault_plan = plan.clone();
        let (hsps, stats, fleet, json) = neutral_run(cfg);
        let label = format!(
            "boards={boards} threads={host_threads} steal={} topology={} \
             quarantine_after={quarantine_after} plan={plan:?}",
            steal.name(),
            topology.name(),
        );
        prop_assert_eq!(&BASELINE.0, &hsps, "HSPs diverged ({})", &label);
        prop_assert_eq!(&BASELINE.1, &stats, "stats diverged ({})", &label);
        prop_assert_eq!(&BASELINE.2, &json, "stripped report diverged ({})", &label);
        prop_assert_eq!(fleet.is_some(), boards >= 2, "fleet report presence ({})", &label);
    }
}

/// A board that wedges on every entry it is handed gets quarantined,
/// and each of its entries completes on another board — never via the
/// host-software degradation path — leaving the output unchanged.
#[test]
fn permanently_wedged_board_is_quarantined_and_entries_complete_elsewhere() {
    // Entries 1, 4, 7, 10 round-robin onto board 1 of 3; the `#1` pin
    // makes them wedge there (and only there). Two cheap protocol
    // wedges trip the quarantine threshold; everything the drain
    // re-dispatches runs clean on boards 0 and 2.
    let plan = FaultPlan::parse(
        "1:adr-fault:1000000#1,4:adr-fault:1000000#1,7:adr-fault:1000000#1,10:adr-fault:1000000#1",
    )
    .expect("valid plan");
    let mut cfg = fleet_config(3, 2);
    cfg.fleet.quarantine_after = 2;
    cfg.fault_plan = Some(plan);
    let (hsps, stats, fleet, json) = neutral_run(cfg);
    assert_eq!(BASELINE.0, hsps, "HSPs changed under quarantine");
    assert_eq!(BASELINE.1, stats, "stats changed under quarantine");
    assert_eq!(BASELINE.2, json, "stripped report changed under quarantine");
    let f = fleet.expect("fleet report at 3 boards");
    assert!(
        stats.step2.active_keys > 11,
        "workload too small to exercise the pinned entries"
    );
    assert!(
        f.quarantined.contains(&1),
        "the wedging board was not quarantined: {:?}",
        f.quarantined
    );
    assert!(
        f.redispatched >= 2,
        "expected the strikes and the drain to re-dispatch entries, got {}",
        f.redispatched
    );
    assert_eq!(
        f.aggregate.faults.entries_degraded, 0,
        "re-dispatched entries must complete on boards, not host software"
    );
    let completed: u64 = f.entries_by_board.iter().sum();
    assert_eq!(
        completed, stats.step2.active_keys,
        "every entry must complete on some board"
    );
}

/// The board count changes dispatch, never results — including under
/// `--overlap` streaming, where fleet batches flow through the bounded
/// channel as entries complete.
#[test]
fn overlapped_fleet_matches_barrier_fleet() {
    let mut barrier = fleet_config(4, 2);
    barrier.fault_plan = Some(FaultPlan::seeded_heavy(97));
    let mut overlapped = barrier.clone();
    overlapped.overlap = true;
    overlapped.step3_threads = 4;
    let (h1, s1, f1, j1) = neutral_run(barrier);
    let (h2, s2, f2, j2) = neutral_run(overlapped);
    assert_eq!(h1, h2, "HSPs diverged between barrier and overlap");
    assert_eq!(s1, s2, "stats diverged between barrier and overlap");
    assert_eq!(
        j1, j2,
        "stripped report diverged between barrier and overlap"
    );
    // The fleet schedule itself is overlap-invariant too: same steals,
    // same makespan, same per-board entry counts.
    let (f1, f2) = (f1.expect("fleet"), f2.expect("fleet"));
    assert_eq!(f1.steals, f2.steals);
    assert_eq!(f1.makespan_seconds, f2.makespan_seconds);
    assert_eq!(f1.entries_by_board, f2.entries_by_board);
    assert_eq!(f1.quarantined, f2.quarantined);
}
